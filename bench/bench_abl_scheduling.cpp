// Experiment A3 — energy-aware scheduling ablation. The paper's motivation:
// power estimation "is particularly useful ... for identifying the largest
// power consumers and make informed decisions during the scheduling". This
// bench runs the same workload under three placement policies and two DVFS
// settings and reports throughput, average power and — the decision metric —
// energy per unit of work.
#include <cstdio>
#include <memory>

#include "os/scheduler.h"
#include "os/system.h"
#include "util/units.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

struct RunResult {
  double avg_watts = 0.0;
  double instructions = 0.0;
  double joules = 0.0;
  double nj_per_instruction = 0.0;
};

RunResult run_policy(std::unique_ptr<os::Scheduler> scheduler, bool governor,
                     double pin_hz, std::size_t tasks) {
  os::System::Options options;
  options.scheduler = std::move(scheduler);
  options.use_ondemand_governor = governor;
  os::System system(simcpu::i3_2120(), std::move(options));
  if (!governor) system.pin_frequency(pin_hz);

  const util::DurationNs duration = util::seconds_to_ns(30);
  for (std::size_t i = 0; i < tasks; ++i) {
    // Alternating compute/memory tasks at 70% duty: leaves placement room.
    const auto profile = (i % 2 == 0) ? workloads::cpu_stress(0.7)
                                      : workloads::memory_stress(8.0 * 1024 * 1024, 0.7);
    system.spawn("task", std::make_unique<workloads::SteadyBehavior>(profile, duration));
  }

  const double e0 = system.machine().total_energy_joules();
  const auto c0 = system.machine().machine_counters();
  system.run_for(duration);
  const double joules = system.machine().total_energy_joules() - e0;
  const auto delta = system.machine().machine_counters().delta_since(c0);

  RunResult r;
  r.joules = joules;
  r.avg_watts = joules / util::ns_to_seconds(duration);
  r.instructions = static_cast<double>(delta.instructions);
  r.nj_per_instruction = r.instructions > 0 ? joules / r.instructions * 1e9 : 0.0;
  return r;
}

}  // namespace

int main() {
  std::printf("=== A3: scheduling/DVFS ablation — energy per unit of work ===\n");
  std::printf("workload: 2 tasks (1 compute + 1 memory) at 70%% duty, 30 s\n\n");
  std::printf("%-34s %10s %14s %16s\n", "policy", "avg W", "Ginstr", "nJ/instruction");

  struct Policy {
    const char* label;
    std::unique_ptr<os::Scheduler> (*make)();
    bool governor;
    double pin_hz;
  };
  const Policy policies[] = {
      {"pack @3.3GHz", [] { return std::unique_ptr<os::Scheduler>(new os::PackScheduler()); },
       false, 3.3e9},
      {"spread @3.3GHz",
       [] { return std::unique_ptr<os::Scheduler>(new os::SpreadScheduler()); }, false, 3.3e9},
      {"round-robin @3.3GHz",
       [] { return std::unique_ptr<os::Scheduler>(new os::RoundRobinScheduler()); }, false,
       3.3e9},
      {"pack @1.6GHz", [] { return std::unique_ptr<os::Scheduler>(new os::PackScheduler()); },
       false, 1.6e9},
      {"spread @1.6GHz",
       [] { return std::unique_ptr<os::Scheduler>(new os::SpreadScheduler()); }, false, 1.6e9},
      {"spread + ondemand governor",
       [] { return std::unique_ptr<os::Scheduler>(new os::SpreadScheduler()); }, true, 0.0},
  };

  double best_nj = 1e300;
  const char* best_label = "";
  for (const auto& policy : policies) {
    const RunResult r = run_policy(policy.make(), policy.governor, policy.pin_hz, 2);
    std::printf("%-34s %10.2f %14.2f %16.3f\n", policy.label, r.avg_watts,
                r.instructions / 1e9, r.nj_per_instruction);
    if (r.nj_per_instruction > 0 && r.nj_per_instruction < best_nj) {
      best_nj = r.nj_per_instruction;
      best_label = policy.label;
    }
  }
  std::printf("\nmost energy-efficient policy for this workload: %s (%.3f nJ/instr)\n",
              best_label, best_nj);
  std::printf("(the informed-scheduling decision the paper motivates)\n");
  return 0;
}
