// Experiment O4 — telemetry wire throughput. The distributed collector
// claims remote monitoring adds negligible overhead on top of the local
// pipeline: this google-benchmark binary measures (a) the pure wire cost —
// records through WireEncoder framing + FrameDecoder parsing, no sockets —
// and (b) loopback end-to-end throughput with 1, 8 and 32 agents streaming
// into one CollectorServer, manual-polled so the numbers are scheduling
// noise, not thread wakeups. Emits BENCH_net.json for the results pipeline.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "gbench_json.h"
#include "net/collector_server.h"
#include "net/telemetry_client.h"
#include "net/wire.h"

using namespace powerapi;

namespace {

constexpr int kBatchRecords = 128;

api::PowerEstimate sample_estimate(std::int64_t tick) {
  api::PowerEstimate e;
  e.timestamp = tick * 250'000'000;
  e.pid = api::kMachinePid;
  e.formula = "powerapi-hpc";
  e.watts = 31.48 + 0.001 * static_cast<double>(tick % 97);
  e.model_version = 1;
  return e;
}

/// Pure wire cost: one batch of records encoded, framed, CRC'd, decoded.
void wire_roundtrip(benchmark::State& state) {
  net::WireEncoder encoder;
  net::FrameDecoder decoder;
  net::WireSink sink;  // Discards records; the codec is what's measured.
  std::int64_t tick = 0;
  for (auto _ : state) {
    for (int i = 0; i < kBatchRecords; ++i) encoder.add(sample_estimate(tick++));
    const auto frame = encoder.take_batch_frame();
    if (!decoder.consume(frame.data(), frame.size(), sink)) {
      state.SkipWithError("decode failed");
      break;
    }
    benchmark::DoNotOptimize(decoder.records_decoded());
  }
  state.SetItemsProcessed(state.iterations() * kBatchRecords);
}

/// Loopback end-to-end: N agents -> TCP -> one collector, manual polling.
void loopback_throughput(benchmark::State& state) {
  const auto agents = static_cast<std::size_t>(state.range(0));

  net::CollectorSink discard;  // Counts in server stats; drops payloads.
  net::CollectorServer server({}, discard);
  if (!server.listening()) {
    state.SkipWithError("cannot bind loopback listener");
    return;
  }

  std::vector<std::unique_ptr<net::TelemetryClient>> clients;
  for (std::size_t i = 0; i < agents; ++i) {
    net::TelemetryClientOptions options;
    options.port = server.port();
    options.agent_id = "bench-agent-" + std::to_string(i);
    options.batch_max_records = kBatchRecords;
    options.flush_interval_ms = 1000;  // Size-driven flushes only.
    clients.push_back(std::make_unique<net::TelemetryClient>(options));
  }
  // Connect outside the timed region.
  for (int spin = 0; spin < 2000; ++spin) {
    bool all = true;
    for (auto& client : clients) {
      client->poll_once(0);
      all = all && client->connected();
    }
    server.poll_once(0);
    if (all) break;
  }

  std::int64_t tick = 0;
  std::uint64_t expected = server.stats().records_decoded;
  for (auto _ : state) {
    ++tick;
    for (auto& client : clients) {
      for (int i = 0; i < kBatchRecords; ++i) {
        client->report(sample_estimate(tick));
      }
    }
    expected += agents * kBatchRecords;
    // Pump until the collector has decoded this round completely: the
    // measured quantity is delivered records, not enqueued ones.
    int spins = 0;
    while (server.stats().records_decoded < expected) {
      for (auto& client : clients) client->poll_once(0);
      server.poll_once(0);
      if (++spins > 1'000'000) {
        state.SkipWithError("loopback stalled — records never delivered");
        return;
      }
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(agents * kBatchRecords));

  for (auto& client : clients) client->stop(/*flush_timeout_ms=*/50);
}

}  // namespace

BENCHMARK(wire_roundtrip)->Unit(benchmark::kMicrosecond);
BENCHMARK(loopback_throughput)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  return powerapi::benchx::run_benchmarks_with_json(argc, argv, "net");
}
