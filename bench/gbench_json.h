// Glue between google-benchmark and the BENCH_<name>.json sidecar emitter
// in harness.h: a console reporter that also captures every run, and a
// main() body shared by the micro-benchmark binaries.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness.h"
#include "util/logging.h"

namespace powerapi::benchx {

/// Console output as usual, plus capture of every run for the JSON sidecar.
class JsonTeeReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      BenchMetric metric;
      metric.name = run.benchmark_name();
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        metric.value = items->second;
        metric.unit = "items/s";
      } else {
        metric.value = run.GetAdjustedRealTime();
        metric.unit = "ns";
      }
      metric.iterations = static_cast<std::uint64_t>(run.iterations);
      metrics_.push_back(std::move(metric));
      // User-defined counters become their own metrics so deterministic
      // quantities (e.g. the governor's joules-per-work delta) can be
      // gated by bench_diff.py alongside the timing numbers.
      for (const auto& [counter_name, counter] : run.counters) {
        if (counter_name == "items_per_second" ||
            counter_name == "bytes_per_second") {
          continue;
        }
        BenchMetric extra;
        extra.name = run.benchmark_name() + "/" + counter_name;
        extra.value = counter;
        extra.unit = "counter";
        extra.iterations = static_cast<std::uint64_t>(run.iterations);
        metrics_.push_back(std::move(extra));
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

  const std::vector<BenchMetric>& metrics() const noexcept { return metrics_; }

 private:
  std::vector<BenchMetric> metrics_;
};

/// Runs the registered benchmarks and writes BENCH_<json_name>.json.
inline int run_benchmarks_with_json(int argc, char** argv, const std::string& json_name) {
  util::configure_logging(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonTeeReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  write_bench_json(json_name, reporter.metrics());
  return 0;
}

}  // namespace powerapi::benchx
