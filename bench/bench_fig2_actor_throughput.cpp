// Experiment F2 — Figure 2 of the paper: the actor architecture. The paper
// claims an actor "can handle millions of messages per second ... a key
// property for supporting real-time power estimations". This google-benchmark
// binary measures the runtime's message throughput in the configurations the
// pipeline uses: single-actor drain, pipeline chains, event-bus fan-out, and
// the threaded dispatcher.
#include <benchmark/benchmark.h>

#include <atomic>
#include <vector>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "gbench_json.h"

using namespace powerapi;

namespace {

/// Counts received messages; optionally forwards to a next stage.
class CountingActor final : public actors::Actor {
 public:
  explicit CountingActor(actors::ActorRef next = {}) : next_(next) {}

  void receive(actors::Envelope& envelope) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    if (next_.valid()) next_.tell(envelope.payload, self());
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }

 private:
  actors::ActorRef next_;
  std::atomic<std::uint64_t> count_{0};
};

void BM_ManualDrainSingleActor(benchmark::State& state) {
  actors::ActorSystem system(actors::ActorSystem::Mode::kManual);
  const auto actor = system.spawn_as<CountingActor>("sink");
  const std::int64_t batch = state.range(0);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < batch; ++i) actor.tell(i);
    system.drain();
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_ManualDrainSingleActor)->Arg(1024)->Arg(16384);

void BM_ManualPipelineChain(benchmark::State& state) {
  // Sensor -> Formula -> Aggregator -> Reporter chain, as in Figure 2.
  actors::ActorSystem system(actors::ActorSystem::Mode::kManual);
  const auto reporter = system.spawn_as<CountingActor>("reporter");
  const auto aggregator = system.spawn_as<CountingActor>("aggregator", reporter);
  const auto formula = system.spawn_as<CountingActor>("formula", aggregator);
  const auto sensor = system.spawn_as<CountingActor>("sensor", formula);
  const std::int64_t batch = state.range(0);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < batch; ++i) sensor.tell(i);
    system.drain();
  }
  // Each injected message traverses 4 actors.
  state.SetItemsProcessed(state.iterations() * batch * 4);
}
BENCHMARK(BM_ManualPipelineChain)->Arg(4096);

void BM_EventBusFanout(benchmark::State& state) {
  actors::ActorSystem system(actors::ActorSystem::Mode::kManual);
  actors::EventBus bus(system);
  const std::int64_t subscribers = state.range(0);
  for (std::int64_t i = 0; i < subscribers; ++i) {
    bus.subscribe("power:estimate", system.spawn_as<CountingActor>("sub"));
  }
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) bus.publish("power:estimate", i);
    system.drain();
  }
  state.SetItemsProcessed(state.iterations() * 256 * subscribers);
}
BENCHMARK(BM_EventBusFanout)->Arg(1)->Arg(8)->Arg(64);

void BM_EventBusFanoutFatPayload(benchmark::State& state) {
  // Fan-out of a payload too big for inline storage (a 2 KiB sample vector,
  // the shape of a SensorReport burst): the bus materializes it once per
  // publish and shares it by refcount, so per-subscriber cost is a pointer
  // copy instead of a deep copy. Publishes by interned TopicId, as the
  // pipeline components do.
  actors::ActorSystem system(actors::ActorSystem::Mode::kManual);
  actors::EventBus bus(system);
  const auto topic = bus.intern("sensor:burst");
  const std::int64_t subscribers = state.range(0);
  for (std::int64_t i = 0; i < subscribers; ++i) {
    bus.subscribe(topic, system.spawn_as<CountingActor>("sub"));
  }
  const std::vector<double> samples(256, 1.5);
  for (auto _ : state) {
    for (int i = 0; i < 256; ++i) bus.publish(topic, samples);
    system.drain();
  }
  state.SetItemsProcessed(state.iterations() * 256 * subscribers);
}
BENCHMARK(BM_EventBusFanoutFatPayload)->Arg(1)->Arg(8)->Arg(64);

void BM_ThreadedDispatch(benchmark::State& state) {
  actors::ActorSystem system(actors::ActorSystem::Mode::kThreaded, /*workers=*/2);
  std::vector<actors::ActorRef> actors;
  for (int i = 0; i < 8; ++i) actors.push_back(system.spawn_as<CountingActor>("worker"));
  const std::int64_t batch = state.range(0);
  for (auto _ : state) {
    for (std::int64_t i = 0; i < batch; ++i) actors[i % actors.size()].tell(i);
    system.await_idle();
  }
  state.SetItemsProcessed(state.iterations() * batch);
  system.shutdown();
}
BENCHMARK(BM_ThreadedDispatch)->Arg(8192);

}  // namespace

int main(int argc, char** argv) {
  return powerapi::benchx::run_benchmarks_with_json(argc, argv, "fig2");
}
