// Experiment P1 — multi-host monitoring-tick throughput. The FleetMonitor
// claims the actor middleware scales from one host to a rack on the
// work-stealing dispatcher: this google-benchmark binary measures the cost
// of advancing a whole fleet by one monitoring period (every host's sensor
// read → formula → aggregation, concurrently) at 1, 8, 32 and 128 hosts, in
// both dispatcher modes, and emits BENCH_pipeline.json for the results
// pipeline.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "gbench_json.h"
#include "model/model_registry.h"
#include "model/power_model.h"
#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

model::CpuPowerModel tiny_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheReferences,
                hpc::EventId::kCacheMisses};
    f.coefficients = {2.2e-9, 2.5e-8, 1.9e-7};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(31.48, std::move(formulas));
}

std::unique_ptr<os::System> loaded_host() {
  auto host = std::make_unique<os::System>(simcpu::i3_2120());
  for (int i = 0; i < 4; ++i) {
    host->spawn("app", std::make_unique<workloads::SteadyBehavior>(
                           workloads::mixed_stress(0.5, 4.0 * 1024 * 1024, 0.8),
                           /*duration=*/0));
  }
  host->run_for(util::ms_to_ns(10));
  return host;
}

/// One fleet monitoring tick: every host advances one period and its whole
/// pipeline drains. Wall power off so the software pipeline dominates.
/// `shared_registry` switches between per-host model copies (one private
/// ModelRegistry each) and one fleet-wide registry every RegressionFormula
/// reads through; the "model_bytes" counter makes the footprint difference
/// measurable at 32 hosts.
void fleet_tick_bench(benchmark::State& state, actors::ActorSystem::Mode mode,
                      bool shared_registry = false) {
  const auto host_count = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<os::System>> hosts;
  for (std::size_t i = 0; i < host_count; ++i) hosts.push_back(loaded_host());

  api::FleetMonitor::Options options;
  options.mode = mode;
  options.workers = 4;
  api::FleetMonitor fleet(options);
  const model::CpuPowerModel model = tiny_model();
  const auto registry =
      shared_registry ? std::make_shared<model::ModelRegistry>(model) : nullptr;
  for (auto& host : hosts) {
    api::PipelineSpec spec;
    spec.model = model;
    spec.registry = registry;
    spec.period = util::ms_to_ns(1);
    spec.with_powerspy = false;
    const std::size_t index = fleet.add_host(*host, spec);
    fleet.monitor_all(index);
  }

  for (auto _ : state) {
    fleet.run_for(util::ms_to_ns(1));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(host_count));
  state.counters["hosts"] = static_cast<double>(host_count);
  // Bytes of model snapshot resident across the fleet: N copies without
  // sharing, one with.
  const double per_model = static_cast<double>(model.memory_footprint_bytes());
  state.counters["model_bytes"] =
      shared_registry ? per_model : per_model * static_cast<double>(host_count);
}

void BM_FleetTick_Threaded(benchmark::State& state) {
  fleet_tick_bench(state, actors::ActorSystem::Mode::kThreaded);
}
BENCHMARK(BM_FleetTick_Threaded)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_FleetTick_Manual(benchmark::State& state) {
  fleet_tick_bench(state, actors::ActorSystem::Mode::kManual);
}
BENCHMARK(BM_FleetTick_Manual)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(128)
    ->Unit(benchmark::kMicrosecond);

void BM_FleetTick_Threaded_SharedModel(benchmark::State& state) {
  fleet_tick_bench(state, actors::ActorSystem::Mode::kThreaded,
                   /*shared_registry=*/true);
}
BENCHMARK(BM_FleetTick_Threaded_SharedModel)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  return powerapi::benchx::run_benchmarks_with_json(argc, argv, "pipeline");
}
