// Experiment C2 — the paper's §4 comparison with HAPPY (Zhai et al., USENIX
// ATC'14): a HyperThread-aware power model. HAPPY's insight is about
// PER-TASK attribution: a thread whose SMT sibling is busy costs far less
// than the same thread running alone on the core, so an HT-oblivious model
// systematically over-charges co-resident tasks. Zhai et al. report 7.5%
// average error for their HT-aware model on (private) datacenter workloads.
//
// We co-schedule bursty task pairs on the SMT i3 so co-residency flickers
// between solo and shared, and score each model's per-task attribution
// against the simulator's ground-truth attributed power.
#include <array>
#include <cstdio>
#include <memory>

#include "baselines/happy_model.h"
#include "harness.h"
#include "model/trainer.h"
#include "os/system.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

int main() {
  std::printf("=== C2: HAPPY comparison — per-task attribution on SMT pairs ===\n");
  const simcpu::CpuSpec spec = simcpu::i3_2120();

  model::TrainerOptions options;  // Full grid: thread counts 1/2/4 cover SMT states.
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, options);
  const model::SampleSet samples = trainer.collect();

  const model::TrainingResult paper_model = trainer.fit(samples);
  const baselines::HpcModelEstimator powerapi_est(paper_model.model);
  const baselines::HappyModel happy = baselines::HappyModel::train(samples);

  struct Pairing {
    const char* name;
    std::array<simcpu::ExecProfile, 2> profiles;
  };
  const Pairing pairings[] = {
      {"compute+compute", {workloads::cpu_stress(), workloads::branchy_stress()}},
      {"compute+memory",
       {workloads::cpu_stress(), workloads::memory_stress(24.0 * 1024 * 1024)}},
      {"memory+memory",
       {workloads::memory_stress(24.0 * 1024 * 1024),
        workloads::memory_stress(6.0 * 1024 * 1024)}},
  };

  std::vector<double> measured;
  std::vector<double> est_happy;
  std::vector<double> est_powerapi;

  std::printf("\nper-task attribution error (vs ground-truth attributed watts):\n");
  std::printf("%-18s %14s %14s\n", "pairing", "happy", "powerapi-3ctr");
  util::Rng rng(99);
  for (const auto& pairing : pairings) {
    os::System system(spec);
    system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));
    util::Rng wl_rng = rng.fork(2);
    std::vector<os::Pid> pids;
    for (int i = 0; i < 4; ++i) {
      pids.push_back(system.spawn(
          "task", std::make_unique<workloads::BurstyBehavior>(
                      pairing.profiles[i % 2], util::ms_to_ns(300), util::ms_to_ns(200),
                      util::seconds_to_ns(120), wl_rng.fork(static_cast<std::uint64_t>(i)))));
    }
    system.run_for(util::seconds_to_ns(2));
    const auto by_task = benchx::collect_task_observations(
        system, pids, util::seconds_to_ns(45), util::ms_to_ns(500));

    std::vector<model::TrainingSample> all;
    for (const auto& [pid, observations] : by_task) {
      all.insert(all.end(), observations.begin(), observations.end());
    }
    const auto e_happy = benchx::evaluate_task(happy, all);
    const auto e_plain = benchx::evaluate_task(powerapi_est, all);
    std::printf("%-18s %12.2f %% %12.2f %%\n", pairing.name, e_happy.mean_ape,
                e_plain.mean_ape);

    for (const auto& obs : all) {
      if (obs.watts < 0.5) continue;
      measured.push_back(obs.watts);
      est_happy.push_back(happy.estimate_task(obs));
      est_powerapi.push_back(powerapi_est.estimate_task(obs));
    }
  }

  std::printf("\naverage per-task attribution error on HT workloads:\n");
  std::printf("  %-22s %6.2f %%   (Zhai et al. report 7.5 %%)\n", "happy-ht-aware",
              util::mape(measured, est_happy));
  std::printf("  %-22s %6.2f %%   (HT-oblivious: over-charges co-resident tasks)\n",
              "powerapi-3ctr", util::mape(measured, est_powerapi));
  return 0;
}
