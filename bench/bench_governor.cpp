// Experiment O7 — what does closing the loop cost, and what does it buy?
// Three questions, one binary:
//
//   1. BM_FleetTick_GovernorOff/On — host-ticks/s through the fleet
//      monitoring hot path with and without a GovernorActor wired in
//      (sense relays subscribed to every host's aggregated topic, a
//      governor tick per run_for). The budget is set high enough that the
//      full sense→share→decide path runs without actuating, so the delta
//      prices the control plane itself, not DVFS transitions.
//   2. BM_GovernorDecide — the pure decision path (shares + per-host step
//      controllers) at fleet sizes past what the monitoring bench reaches.
//   3. BM_GovernorJoulesPerWork — a miniature capped-vs-uncapped demand
//      spike (the examples/power_governor experiment, shrunk to bench
//      scale); reports joules per giga-instruction for both runs and the
//      capped saving as counters.
//
// Emits BENCH_governor.json; bench_diff.py gates regressions against the
// committed baseline.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "gbench_json.h"
#include "governor/governor.h"
#include "model/power_model.h"
#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

model::CpuPowerModel tiny_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheMisses};
    const double scale = hz / 3.3e9;
    f.coefficients = {2.0e-9 * scale, 1.85e-7 + 0.75e-7 * scale};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(26.0, std::move(formulas));
}

std::unique_ptr<os::System> loaded_host() {
  auto host = std::make_unique<os::System>(simcpu::i3_2120());
  for (int i = 0; i < 2; ++i) {
    host->spawn("scan", std::make_unique<workloads::SteadyBehavior>(
                            workloads::memory_stress(64e6, 1.0), 0));
  }
  host->run_for(util::ms_to_ns(10));
  return host;
}

/// One fleet monitoring tick across N hosts on the threaded dispatcher
/// (the bench_pipeline configuration), optionally with the governor's
/// sense relays and a per-iteration governor tick in the graph.
void fleet_tick_bench(benchmark::State& state, bool governed) {
  const std::size_t host_count = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<os::System>> hosts;
  for (std::size_t i = 0; i < host_count; ++i) hosts.push_back(loaded_host());

  api::FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kThreaded;
  options.workers = 4;
  options.fleet_aggregation = false;
  api::FleetMonitor fleet(options);
  const model::CpuPowerModel model = tiny_model();
  for (auto& host : hosts) {
    api::PipelineSpec spec;
    spec.model = model;
    spec.period = util::ms_to_ns(1);
    spec.with_powerspy = false;
    const std::size_t index = fleet.add_host(*host, spec);
    fleet.monitor_all(index);
    fleet.add_callback_reporter(index, [](const api::AggregatedPower&) {});
  }

  governor::GovernorActor* gov = nullptr;
  actors::ActorRef gov_ref;
  if (governed) {
    governor::GovernorOptions gov_options;
    // Generous budget: the full sense->share->decide path runs every tick
    // but never steps, so iterations stay uniform.
    gov_options.budget_watts = 1e6;
    gov_options.formula = "powerapi-hpc";
    std::vector<governor::HostControl> controls;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      controls.push_back(
          governor::control_for("host" + std::to_string(i), *hosts[i]));
    }
    auto actor = std::make_unique<governor::GovernorActor>(
        fleet.bus(), gov_options, std::move(controls));
    gov = actor.get();
    gov_ref = fleet.actor_system().spawn("governor", std::move(actor));
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      governor::GovernorActor::spawn_sense_relay(
          fleet.actor_system(), fleet.bus(),
          fleet.pipeline(i).aggregated_topic(), gov_ref, i,
          "sense-h" + std::to_string(i));
    }
  }

  util::TimestampNs now = 0;
  for (auto _ : state) {
    fleet.run_for(util::ms_to_ns(1));
    if (governed) {
      now += util::ms_to_ns(1);
      fleet.actor_system().tell(gov_ref,
                                actors::Payload(governor::GovernorTick{now}));
      fleet.actor_system().await_idle();
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(host_count));
  if (gov != nullptr) state.counters["actuations"] = static_cast<double>(gov->actuation_count());
}

void BM_FleetTick_GovernorOff(benchmark::State& state) {
  fleet_tick_bench(state, false);
}
BENCHMARK(BM_FleetTick_GovernorOff)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_FleetTick_GovernorOn(benchmark::State& state) {
  fleet_tick_bench(state, true);
}
BENCHMARK(BM_FleetTick_GovernorOn)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

/// The pure decision path: N synthetic hosts with fresh power samples each
/// tick, shares computed and every step controller consulted. No
/// monitoring pipeline, no simulated machines — just the governor.
void BM_GovernorDecide(benchmark::State& state) {
  const std::size_t host_count = static_cast<std::size_t>(state.range(0));
  actors::ActorSystem system(actors::ActorSystem::Mode::kManual);
  actors::EventBus bus(system);
  governor::GovernorOptions options;
  options.budget_watts = 40.0 * static_cast<double>(host_count);
  std::vector<governor::HostControl> controls;
  for (std::size_t i = 0; i < host_count; ++i) {
    governor::HostControl control;
    control.label = "host" + std::to_string(i);
    control.cores = 4;
    control.frequencies_ascending = {1.6e9, 2.0e9, 2.6e9, 3.3e9};
    // No set_frequency/set_parked hooks: decisions are recorded, not applied.
    controls.push_back(std::move(control));
  }
  auto actor = std::make_unique<governor::GovernorActor>(bus, options,
                                                         std::move(controls));
  const actors::ActorRef gov = system.spawn("governor", std::move(actor));

  util::TimestampNs now = 0;
  for (auto _ : state) {
    now += 1000000;
    for (std::size_t i = 0; i < host_count; ++i) {
      governor::HostPower power;
      power.host = i;
      power.timestamp = now;
      power.formula = "powerapi-hpc";
      // Hover around the per-host share so both step directions stay live.
      power.watts = 38.0 + static_cast<double>((now / 1000000 + i) % 5);
      power.machine_scope = true;
      system.tell(gov, actors::Payload(std::move(power)));
    }
    system.tell(gov, actors::Payload(governor::GovernorTick{now}));
    system.drain();
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(host_count));
}
BENCHMARK(BM_GovernorDecide)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

/// Miniature capped-vs-uncapped demand spike (examples/power_governor at
/// bench scale): a 3-simulated-second window, two work-bounded memory
/// scan jobs per host landing at 0.3 s, each gated off the chunk its
/// retired-instruction target is reached. Work is equal by construction,
/// wall time is equal, so joules per giga-instruction is the efficiency
/// delta the governor buys.
double joules_per_gigainstr(std::size_t host_count, double budget_per_host) {
  std::vector<std::unique_ptr<os::System>> hosts;
  for (std::size_t i = 0; i < host_count; ++i) {
    hosts.push_back(std::make_unique<os::System>(simcpu::i3_2120()));
  }
  api::FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kManual;
  options.fleet_aggregation = false;
  api::FleetMonitor fleet(options);
  const model::CpuPowerModel model = tiny_model();
  for (auto& host : hosts) {
    api::PipelineSpec spec;
    spec.model = model;
    spec.period = util::ms_to_ns(50);
    spec.with_powerspy = false;
    const std::size_t index = fleet.add_host(*host, spec);
    fleet.monitor_all(index);
  }
  governor::GovernorOptions gov_options;
  gov_options.budget_watts = budget_per_host * static_cast<double>(host_count);
  gov_options.cooldown_ns = util::ms_to_ns(500);
  gov_options.max_step = 3;  // Bench-scale window: descend the ladder fast.
  gov_options.formula = "powerapi-hpc";
  std::vector<governor::HostControl> controls;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    controls.push_back(
        governor::control_for("host" + std::to_string(i), *hosts[i]));
  }
  auto actor = std::make_unique<governor::GovernorActor>(
      fleet.bus(), gov_options, std::move(controls));
  const actors::ActorRef gov_ref =
      fleet.actor_system().spawn("governor", std::move(actor));
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    governor::GovernorActor::spawn_sense_relay(
        fleet.actor_system(), fleet.bus(), fleet.pipeline(i).aggregated_topic(),
        gov_ref, i, "sense-h" + std::to_string(i));
  }

  struct Job {
    std::size_t host = 0;
    os::Pid pid = 0;
    workloads::GatedBehavior::Gate gate;
    bool done = false;
  };
  // Sized so both runs finish well inside the window (~1.4 s at f_max,
  // ~1.6 s at the capped operating point) and the equal-work idle tail —
  // where the governor's V^2 savings live — exists at every ladder rung.
  constexpr std::uint64_t kJobTarget = 550'000'000ULL;
  std::vector<Job> jobs;
  util::TimestampNs next_tick = util::ms_to_ns(100);
  const auto on_chunk = [&](util::DurationNs advanced) {
    if (jobs.empty() && advanced >= util::ms_to_ns(300)) {
      for (std::size_t i = 0; i < hosts.size(); ++i) {
        for (int j = 0; j < 2; ++j) {
          Job job;
          job.host = i;
          job.gate = std::make_shared<bool>(true);
          job.pid = hosts[i]->spawn(
              "scan", std::make_unique<workloads::GatedBehavior>(
                          std::make_unique<workloads::SteadyBehavior>(
                              workloads::memory_stress(64e6, 1.0), 0),
                          job.gate));
          jobs.push_back(job);
        }
      }
    }
    for (Job& job : jobs) {
      if (job.done) continue;
      const auto stat = hosts[job.host]->proc_stat(job.pid);
      if (stat && stat->counters.instructions >= kJobTarget) {
        job.done = true;
        *job.gate = false;
      }
    }
    if (advanced >= next_tick) {
      fleet.actor_system().tell(
          gov_ref, actors::Payload(governor::GovernorTick{advanced}));
      fleet.actor_system().drain();
      next_tick += util::ms_to_ns(100);
    }
  };
  fleet.run_for(util::seconds_to_ns(3), on_chunk);
  fleet.finish();

  double joules = 0.0;
  double instructions = 0.0;
  for (const auto& host : hosts) {
    joules += host->total_energy_joules();
    instructions += static_cast<double>(host->machine_counters().instructions);
  }
  return joules / (instructions / 1e9);
}

void BM_GovernorJoulesPerWork(benchmark::State& state) {
  const std::size_t host_count = static_cast<std::size_t>(state.range(0));
  double capped = 0.0;
  double uncapped = 0.0;
  for (auto _ : state) {
    uncapped = joules_per_gigainstr(host_count, 0.0);
    capped = joules_per_gigainstr(host_count, 45.0);
    benchmark::DoNotOptimize(capped);
  }
  state.counters["uncapped_j_per_gi"] = uncapped;
  state.counters["capped_j_per_gi"] = capped;
  state.counters["saved_pct"] = 100.0 * (uncapped - capped) / uncapped;
}
BENCHMARK(BM_GovernorJoulesPerWork)->Arg(1)->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return powerapi::benchx::run_benchmarks_with_json(argc, argv, "governor");
}
