// Experiment O1 — monitoring overhead. The paper requires "an efficient,
// scalable and non-invasive tool"; this google-benchmark binary measures the
// cost of one monitoring tick through the full actor pipeline (sensor read →
// formula → aggregator → reporter) as the number of monitored processes
// grows, plus the cost of the building blocks (backend read, model
// evaluation).
#include <benchmark/benchmark.h>

#include <memory>

#include "gbench_json.h"
#include "hpc/sim_backend.h"
#include "model/power_model.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

using namespace powerapi;

namespace {

model::CpuPowerModel tiny_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheReferences,
                hpc::EventId::kCacheMisses};
    f.coefficients = {2.2e-9, 2.5e-8, 1.9e-7};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(31.48, std::move(formulas));
}

std::unique_ptr<os::System> loaded_system(std::size_t processes) {
  auto system = std::make_unique<os::System>(simcpu::i3_2120());
  for (std::size_t i = 0; i < processes; ++i) {
    system->spawn("app", std::make_unique<workloads::SteadyBehavior>(
                             workloads::mixed_stress(0.5, 4.0 * 1024 * 1024, 0.8),
                             /*duration=*/0));
  }
  system->run_for(util::ms_to_ns(10));
  return system;
}

void BM_BackendRead(benchmark::State& state) {
  auto system = loaded_system(4);
  hpc::SimBackend backend(*system);
  for (auto _ : state) {
    auto values = backend.read(hpc::Target::machine());
    benchmark::DoNotOptimize(values);
  }
}
BENCHMARK(BM_BackendRead);

void BM_ModelEvaluate(benchmark::State& state) {
  const model::CpuPowerModel model = tiny_model();
  model::EventRates rates{};
  model::set_rate(rates, hpc::EventId::kInstructions, 3.1e9);
  model::set_rate(rates, hpc::EventId::kCacheReferences, 2.4e8);
  model::set_rate(rates, hpc::EventId::kCacheMisses, 1.7e7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.estimate_machine(3.3e9, rates));
  }
}
BENCHMARK(BM_ModelEvaluate);

/// Full pipeline cost per monitoring tick, varying monitored process count.
/// The simulated OS advances the minimum possible (1 tick) between monitor
/// ticks so the measurement is dominated by the pipeline, not the simulator.
void BM_PipelineTick(benchmark::State& state) {
  const auto processes = static_cast<std::size_t>(state.range(0));
  auto system = loaded_system(processes);
  api::PowerMeter::Config config;
  config.period = util::ms_to_ns(1);
  config.with_powerspy = false;  // Meter off: measure the software pipeline.
  api::PowerMeter meter(*system, tiny_model(), config);
  meter.monitor_all();

  for (auto _ : state) {
    meter.run_for(util::ms_to_ns(1));
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["monitored"] = static_cast<double>(processes);
}
BENCHMARK(BM_PipelineTick)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  return powerapi::benchx::run_benchmarks_with_json(argc, argv, "overhead");
}
