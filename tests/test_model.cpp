// Tests for the model layer: the per-frequency power model, its text
// serialization, and the Figure-1 training pipeline end to end (on reduced
// grids so the suite stays fast).
#include <gtest/gtest.h>

#include <sstream>

#include "model/model_io.h"
#include "model/power_model.h"
#include "model/trainer.h"
#include "simcpu/cpu_spec.h"

namespace powerapi::model {
namespace {

FrequencyFormula make_formula(double hz, double ci, double cr, double cm) {
  FrequencyFormula f;
  f.frequency_hz = hz;
  f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheReferences,
              hpc::EventId::kCacheMisses};
  f.coefficients = {ci, cr, cm};
  return f;
}

CpuPowerModel paper_model() {
  // The paper's published i3-2120 model at 3.3 GHz + a second point.
  return CpuPowerModel(31.48, {make_formula(3.3e9, 2.22e-9, 2.48e-8, 1.87e-7),
                               make_formula(1.6e9, 1.0e-9, 2.4e-8, 1.8e-7)});
}

TEST(PowerModel, EstimateMatchesPaperFormula) {
  const CpuPowerModel model = paper_model();
  EventRates rates{};
  set_rate(rates, hpc::EventId::kInstructions, 1e9);
  set_rate(rates, hpc::EventId::kCacheReferences, 1e8);
  set_rate(rates, hpc::EventId::kCacheMisses, 1e7);
  const double expected = 2.22e-9 * 1e9 + 2.48e-8 * 1e8 + 1.87e-7 * 1e7;
  EXPECT_NEAR(model.estimate_activity(3.3e9, rates), expected, 1e-9);
  EXPECT_NEAR(model.estimate_machine(3.3e9, rates), 31.48 + expected, 1e-9);
}

TEST(PowerModel, PicksNearestFrequencyFormula) {
  const CpuPowerModel model = paper_model();
  EXPECT_DOUBLE_EQ(model.formula_for(3.2e9)->frequency_hz, 3.3e9);
  EXPECT_DOUBLE_EQ(model.formula_for(1.0e9)->frequency_hz, 1.6e9);
  EXPECT_DOUBLE_EQ(model.formula_for(2.44e9)->frequency_hz, 1.6e9);
  const CpuPowerModel empty;
  EXPECT_EQ(empty.formula_for(1e9), nullptr);
  EXPECT_TRUE(empty.empty());
  EventRates rates{};
  EXPECT_THROW(empty.estimate_activity(1e9, rates), std::logic_error);
}

TEST(PowerModel, ValidatesConstruction) {
  EXPECT_THROW(CpuPowerModel(-1.0, {}), std::invalid_argument);
  FrequencyFormula broken = make_formula(1e9, 1, 2, 3);
  broken.coefficients.pop_back();
  EXPECT_THROW(CpuPowerModel(10.0, {broken}), std::invalid_argument);
}

TEST(PowerModel, DescribeShowsPaperNotation) {
  const std::string text = paper_model().describe();
  EXPECT_NE(text.find("31.48"), std::string::npos);
  EXPECT_NE(text.find("instructions"), std::string::npos);
  EXPECT_NE(text.find("Power_3.3GHz"), std::string::npos);
}

TEST(RatesFromDelta, DividesByWindow) {
  hpc::EventValues delta;
  delta[hpc::EventId::kInstructions] = 500;
  const auto rates = rates_from_delta(delta, 0.25);
  EXPECT_DOUBLE_EQ(rate_of(rates, hpc::EventId::kInstructions), 2000.0);
  EXPECT_THROW(rates_from_delta(delta, 0.0), std::invalid_argument);
}

// --- model_io ---

TEST(ModelIo, RoundTripsThroughText) {
  const CpuPowerModel original = paper_model();
  const std::string text = model_to_string(original);
  const auto parsed = model_from_string(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  const CpuPowerModel& restored = parsed.value();
  EXPECT_DOUBLE_EQ(restored.idle_watts(), original.idle_watts());
  ASSERT_EQ(restored.formulas().size(), original.formulas().size());
  for (std::size_t i = 0; i < restored.formulas().size(); ++i) {
    EXPECT_DOUBLE_EQ(restored.formulas()[i].frequency_hz,
                     original.formulas()[i].frequency_hz);
    EXPECT_EQ(restored.formulas()[i].events, original.formulas()[i].events);
    for (std::size_t c = 0; c < restored.formulas()[i].coefficients.size(); ++c) {
      EXPECT_DOUBLE_EQ(restored.formulas()[i].coefficients[c],
                       original.formulas()[i].coefficients[c]);
    }
  }
}

TEST(ModelIo, AcceptsCommentsAndBlankLines) {
  const std::string text =
      "powerapi-model v1\n"
      "# a comment\n"
      "\n"
      "idle 30\n"
      "frequency 1e9\n"
      "instructions 2e-9\n";
  const auto parsed = model_from_string(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  EXPECT_DOUBLE_EQ(parsed.value().idle_watts(), 30.0);
}

TEST(ModelIo, RejectsMalformedInput) {
  const char* bad_inputs[] = {
      "",                                             // Empty.
      "not-a-model\nidle 3\n",                        // Wrong header.
      "powerapi-model v1\nfrequency 1e9\ncycles 1\n", // Missing idle.
      "powerapi-model v1\nidle 3\n",                  // No formulas.
      "powerapi-model v1\nidle 3\nfrequency 1e9\n",   // Empty formula block.
      "powerapi-model v1\nidle -3\nfrequency 1e9\ncycles 1\n",     // Negative idle.
      "powerapi-model v1\nidle 3\ncycles 1\n",        // Coefficient before frequency.
      "powerapi-model v1\nidle 3\nfrequency 1e9\nwarp-cores 1\n",  // Unknown event.
      "powerapi-model v1\nidle x\nfrequency 1e9\ncycles 1\n",      // Bad number.
      "powerapi-model v1\nidle 3\nidle 4\nfrequency 1e9\ncycles 1\n",  // Dup idle.
  };
  for (const char* text : bad_inputs) {
    const auto parsed = model_from_string(text);
    EXPECT_FALSE(parsed.ok()) << "should reject: " << text;
  }
}

TEST(ModelIo, RoundTripsFitDiagnostics) {
  CpuPowerModel original = paper_model();
  // paper_model ships with default r_squared; give each formula a distinct
  // diagnostic so the round trip is actually exercised.
  std::vector<FrequencyFormula> formulas = original.formulas();
  for (std::size_t i = 0; i < formulas.size(); ++i) {
    formulas[i].r_squared = 0.9 + 0.01 * static_cast<double>(i);
  }
  original = CpuPowerModel(original.idle_watts(), std::move(formulas));

  const std::string text = model_to_string(original);
  EXPECT_NE(text.find("powerapi-model v2"), std::string::npos);
  EXPECT_NE(text.find("r2 "), std::string::npos);

  const auto parsed = model_from_string(text);
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  ASSERT_EQ(parsed.value().formulas().size(), original.formulas().size());
  for (std::size_t i = 0; i < original.formulas().size(); ++i) {
    EXPECT_DOUBLE_EQ(parsed.value().formulas()[i].r_squared,
                     original.formulas()[i].r_squared);
  }
}

TEST(ModelIo, RejectsUnknownFormatVersions) {
  const char* bad_headers[] = {
      "powerapi-model v3\nidle 3\nfrequency 1e9\ncycles 1\n",   // Future version.
      "powerapi-model v99\nidle 3\nfrequency 1e9\ncycles 1\n",  // Far future.
      "powerapi-model v0\nidle 3\nfrequency 1e9\ncycles 1\n",   // Nonsense.
      "powerapi-model v1.5\nidle 3\nfrequency 1e9\ncycles 1\n", // Non-integer.
      "powerapi-model 2\nidle 3\nfrequency 1e9\ncycles 1\n",    // Missing 'v'.
      "powerapi-model vx\nidle 3\nfrequency 1e9\ncycles 1\n",   // Not a number.
  };
  for (const char* text : bad_headers) {
    const auto parsed = model_from_string(text);
    EXPECT_FALSE(parsed.ok()) << "should reject: " << text;
  }
  // The v3 error must tell the operator what this build can read.
  const auto v3 = model_from_string(bad_headers[0]);
  EXPECT_NE(v3.error_message().find("unsupported format version"), std::string::npos);
  EXPECT_NE(v3.error_message().find("v2"), std::string::npos);
}

TEST(ModelIo, V1FilesStillLoadButMayNotUseDiagnostics) {
  // A v1 file (no r2 lines) parses; an r2 line inside a v1 file is invalid.
  const auto v1 = model_from_string(
      "powerapi-model v1\nidle 30\nfrequency 1e9\ninstructions 2e-9\n");
  ASSERT_TRUE(v1.ok()) << v1.error_message();
  const auto v1_with_r2 = model_from_string(
      "powerapi-model v1\nidle 30\nfrequency 1e9\nr2 0.9\ninstructions 2e-9\n");
  EXPECT_FALSE(v1_with_r2.ok());
}

TEST(ModelIo, SavedFilesCarryAChecksumFooter) {
  const std::string text = model_to_string(paper_model());
  // Last line is "# crc32c XXXXXXXX".
  const std::size_t footer_at = text.rfind("# crc32c ");
  ASSERT_NE(footer_at, std::string::npos);
  EXPECT_EQ(text.find('\n', footer_at), text.size() - 1);  // Footer is last.
  ASSERT_TRUE(model_from_string(text).ok());
}

TEST(ModelIo, CorruptedFileFailsChecksum) {
  std::string text = model_to_string(paper_model());
  // Flip one digit of the idle power: content no longer matches the footer.
  const std::size_t idle_at = text.find("idle 31.48");
  ASSERT_NE(idle_at, std::string::npos);
  text[idle_at + 5] = '4';
  const auto parsed = model_from_string(text);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_message().find("checksum mismatch"), std::string::npos);
}

TEST(ModelIo, MalformedChecksumFooterRejected) {
  std::string text = model_to_string(paper_model());
  const std::size_t footer_at = text.rfind("# crc32c ");
  ASSERT_NE(footer_at, std::string::npos);
  // Truncate the hex digits: a present footer must be well-formed.
  std::string truncated = text.substr(0, footer_at) + "# crc32c 12ab\n";
  const auto parsed = model_from_string(truncated);
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.error_message().find("malformed crc32c footer"),
            std::string::npos);
}

TEST(ModelIo, FilesWithoutFooterLoadUnchecked) {
  // v1 files and hand-written files never carry a footer; they still load.
  const auto parsed = model_from_string(
      "powerapi-model v2\nidle 30\nfrequency 1e9\ninstructions 2e-9\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  EXPECT_DOUBLE_EQ(parsed.value().idle_watts(), 30.0);
}

// --- Trainer (reduced grid for speed) ---

TrainerOptions quick_options() {
  TrainerOptions options;
  options.grid.intensities = {1.0};
  options.grid.memory_shares = {0.0, 1.0};
  options.grid.working_sets = {24.0 * 1024 * 1024};
  options.grid.thread_counts = {1, 4};
  options.idle_duration = util::seconds_to_ns(2);
  options.point_duration = util::seconds_to_ns(1);
  return options;
}

simcpu::CpuSpec two_point_spec() {
  simcpu::CpuSpec spec = simcpu::i3_2120();
  spec.frequencies_hz = {1.6e9, 3.3e9};  // Two points keep the test fast.
  return spec;
}

TEST(Trainer, LearnsSaneModelEndToEnd) {
  const auto spec = two_point_spec();
  Trainer trainer(spec, simcpu::GroundTruthParams{}, quick_options());
  const TrainingResult result = trainer.train();

  // Idle lands near platform + near-idle cores (25.6 + ~2x2.6..3.7 W).
  EXPECT_GT(result.model.idle_watts(), 26.0);
  EXPECT_LT(result.model.idle_watts(), 34.0);

  ASSERT_EQ(result.model.formulas().size(), 2u);
  for (const auto& report : result.reports) {
    EXPECT_GT(report.r_squared, 0.85) << "poor fit at " << report.frequency_hz;
  }

  // Coefficients are non-negative and the instruction coefficient grows
  // with frequency (V²f scaling).
  const auto* slow = result.model.formula_for(1.6e9);
  const auto* fast = result.model.formula_for(3.3e9);
  for (double c : slow->coefficients) EXPECT_GE(c, 0.0);
  EXPECT_GT(fast->coefficients[0], slow->coefficients[0]);

  // The max-frequency instruction coefficient is in the paper's order of
  // magnitude (nJ per instruction).
  EXPECT_GT(fast->coefficients[0], 0.5e-9);
  EXPECT_LT(fast->coefficients[0], 8e-9);
}

TEST(Trainer, AutoSelectionPicksPowerCorrelatedEvents) {
  const auto spec = two_point_spec();
  TrainerOptions options = quick_options();
  options.auto_select_events = true;
  options.selection.max_features = 3;
  Trainer trainer(spec, simcpu::GroundTruthParams{}, options);
  const TrainingResult result = trainer.train();
  EXPECT_FALSE(result.selected_events.empty());
  EXPECT_LE(result.selected_events.size(), 3u);
  // Whatever was picked, the fit must be good.
  for (const auto& report : result.reports) EXPECT_GT(report.r_squared, 0.75);
}

TEST(Trainer, FitRejectsDegenerateInputs) {
  const auto spec = two_point_spec();
  Trainer trainer(spec, simcpu::GroundTruthParams{}, quick_options());
  SampleSet empty;
  EXPECT_THROW(trainer.fit(empty), std::invalid_argument);

  SampleSet tiny;
  tiny.idle_watts = 30;
  tiny.frequencies_hz = {1.6e9};
  tiny.by_frequency.push_back({TrainingSample{}});  // 1 sample < events + 2.
  EXPECT_THROW(trainer.fit(tiny), std::runtime_error);
}

TEST(Trainer, PaperOptionsUseThreeGenericCounters) {
  const TrainerOptions options = paper_trainer_options();
  ASSERT_EQ(options.events.size(), 3u);
  EXPECT_EQ(options.events[0], hpc::EventId::kInstructions);
  EXPECT_EQ(options.grid.intensities, std::vector<double>{1.0});
  EXPECT_FALSE(options.auto_select_events);
}

TEST(Trainer, CollectIsDeterministicForFixedSeed) {
  const auto spec = two_point_spec();
  TrainerOptions options = quick_options();
  options.grid.thread_counts = {1};
  Trainer a(spec, simcpu::GroundTruthParams{}, options);
  Trainer b(spec, simcpu::GroundTruthParams{}, options);
  const SampleSet sa = a.collect();
  const SampleSet sb = b.collect();
  ASSERT_EQ(sa.total_samples(), sb.total_samples());
  EXPECT_DOUBLE_EQ(sa.idle_watts, sb.idle_watts);
  for (std::size_t f = 0; f < sa.by_frequency.size(); ++f) {
    for (std::size_t i = 0; i < sa.by_frequency[f].size(); ++i) {
      EXPECT_DOUBLE_EQ(sa.by_frequency[f][i].watts, sb.by_frequency[f][i].watts);
    }
  }
}

}  // namespace
}  // namespace powerapi::model
