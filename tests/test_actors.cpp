// Tests for the actor runtime: manual drain determinism, supervision,
// dead letters, the event bus, tickers, and the threaded dispatcher's
// concurrency guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "actors/timers.h"

namespace powerapi::actors {
namespace {

class Recorder final : public Actor {
 public:
  void receive(Envelope& envelope) override {
    if (const auto* v = envelope.payload.get<int>()) {
      values.push_back(*v);
    }
  }
  std::vector<int> values;
};

TEST(ActorSystem, DeliversInFifoOrderPerActor) {
  ActorSystem system(ActorSystem::Mode::kManual);
  auto owned = std::make_unique<Recorder>();
  Recorder* recorder = owned.get();
  const auto ref = system.spawn("recorder", std::move(owned));
  for (int i = 0; i < 10; ++i) ref.tell(i);
  EXPECT_EQ(system.drain(), 10u);
  EXPECT_EQ(recorder->values, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(ActorSystem, DrainIsDeterministicRoundRobin) {
  // Two actors, interleaved sends: drain must process one message per actor
  // per round, in spawn order.
  ActorSystem system(ActorSystem::Mode::kManual);
  std::vector<std::string> log;
  class Logging final : public Actor {
   public:
    Logging(std::vector<std::string>* log, std::string tag) : log_(log), tag_(std::move(tag)) {}
    void receive(Envelope&) override { log_->push_back(tag_); }

   private:
    std::vector<std::string>* log_;
    std::string tag_;
  };
  const auto a = system.spawn("a", std::make_unique<Logging>(&log, "a"));
  const auto b = system.spawn("b", std::make_unique<Logging>(&log, "b"));
  a.tell(1);
  a.tell(2);
  b.tell(3);
  system.drain();
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "a"}));
}

TEST(ActorSystem, MessagesToUnknownActorsAreDeadLetters) {
  ActorSystem system(ActorSystem::Mode::kManual);
  ActorRef bogus(&system, 999);
  bogus.tell(1);
  EXPECT_EQ(system.dead_letters(), 1u);
  ActorRef invalid;
  invalid.tell(2);  // No system: silently ignored, no crash.
  EXPECT_EQ(system.messages_processed(), 0u);
}

TEST(ActorSystem, StopDrainsRemainingToDeadLetters) {
  ActorSystem system(ActorSystem::Mode::kManual);
  auto owned = std::make_unique<Recorder>();
  const auto ref = system.spawn("r", std::move(owned));
  ref.tell(1);
  system.stop(ref);
  ref.tell(2);  // Post-stop sends are dead letters immediately.
  system.drain();
  EXPECT_EQ(system.dead_letters(), 2u);  // Both the queued and the late one.
  EXPECT_EQ(system.actor_count(), 0u);
}

TEST(ActorSystem, StoppedThenDrainedMessageIsDeadLetteredExactlyOnce) {
  // A message queued before stop() must be converted to a dead letter by the
  // drain-dead-letters path exactly once: repeated drains must not double
  // count, and the books must balance (nothing processed, nothing lost).
  ActorSystem system(ActorSystem::Mode::kManual);
  const auto ref = system.spawn("r", std::make_unique<Recorder>());
  ref.tell(1);
  system.stop(ref);
  EXPECT_EQ(system.dead_letters(), 0u);  // Backlog not yet drained.
  system.drain();
  EXPECT_EQ(system.dead_letters(), 1u);
  system.drain();
  system.drain();
  EXPECT_EQ(system.dead_letters(), 1u);  // Exactly once, not re-counted.
  EXPECT_EQ(system.messages_processed(), 0u);
}

TEST(ActorSystem, MaxMessagesBoundsDrain) {
  ActorSystem system(ActorSystem::Mode::kManual);
  const auto ref = system.spawn("r", std::make_unique<Recorder>());
  for (int i = 0; i < 10; ++i) ref.tell(i);
  EXPECT_EQ(system.drain(3), 3u);
  EXPECT_EQ(system.drain(), 7u);
}

// --- Supervision ---

class Flaky final : public Actor {
 public:
  explicit Flaky(SupervisionDirective directive) : directive_(directive) {}

  void pre_start() override { ++starts; }
  void post_stop() override { ++stops; }
  void receive(Envelope& envelope) override {
    if (envelope.payload.get<std::string>()) {
      throw std::runtime_error("poison");
    }
    ++handled;
  }
  SupervisionDirective on_failure(const std::exception&) override { return directive_; }

  int starts = 0;
  int stops = 0;
  int handled = 0;

 private:
  SupervisionDirective directive_;
};

TEST(Supervision, ResumeKeepsProcessing) {
  ActorSystem system(ActorSystem::Mode::kManual);
  auto owned = std::make_unique<Flaky>(SupervisionDirective::kResume);
  Flaky* actor = owned.get();
  const auto ref = system.spawn("flaky", std::move(owned));
  ref.tell(1);
  ref.tell(std::string("boom"));
  ref.tell(2);
  system.drain();
  EXPECT_EQ(actor->handled, 2);
  EXPECT_EQ(system.failures(), 1u);
  EXPECT_EQ(system.restarts(), 0u);
}

TEST(Supervision, RestartCyclesLifecycle) {
  ActorSystem system(ActorSystem::Mode::kManual);
  auto owned = std::make_unique<Flaky>(SupervisionDirective::kRestart);
  Flaky* actor = owned.get();
  const auto ref = system.spawn("flaky", std::move(owned));
  EXPECT_EQ(actor->starts, 1);
  ref.tell(std::string("boom"));
  ref.tell(7);
  system.drain();
  EXPECT_EQ(actor->starts, 2);  // pre_start ran again.
  EXPECT_EQ(actor->stops, 1);
  EXPECT_EQ(actor->handled, 1);  // Message after the failure still handled.
  EXPECT_EQ(system.restarts(), 1u);
}

TEST(Supervision, StopRemovesActor) {
  ActorSystem system(ActorSystem::Mode::kManual);
  const auto ref = system.spawn("flaky",
                                std::make_unique<Flaky>(SupervisionDirective::kStop));
  ref.tell(std::string("boom"));
  ref.tell(1);
  system.drain();
  EXPECT_EQ(system.actor_count(), 0u);
  EXPECT_GE(system.dead_letters(), 1u);  // The trailing message.
}

// --- EventBus ---

TEST(EventBus, FanoutAndUnsubscribe) {
  ActorSystem system(ActorSystem::Mode::kManual);
  EventBus bus(system);
  auto o1 = std::make_unique<Recorder>();
  auto o2 = std::make_unique<Recorder>();
  Recorder* r1 = o1.get();
  Recorder* r2 = o2.get();
  const auto a1 = system.spawn("r1", std::move(o1));
  const auto a2 = system.spawn("r2", std::move(o2));
  bus.subscribe("topic", a1);
  bus.subscribe("topic", a2);
  bus.subscribe("topic", a2);  // Duplicate ignored.
  EXPECT_EQ(bus.subscriber_count("topic"), 2u);

  EXPECT_EQ(bus.publish("topic", 42), 2u);
  system.drain();
  EXPECT_EQ(r1->values, std::vector<int>{42});
  EXPECT_EQ(r2->values, std::vector<int>{42});

  bus.unsubscribe("topic", a1);
  EXPECT_EQ(bus.publish("topic", 43), 1u);
  system.drain();
  EXPECT_EQ(r1->values.size(), 1u);
  EXPECT_EQ(r2->values.size(), 2u);
  EXPECT_EQ(bus.publish("other-topic", 1), 0u);
}

/// Counts copies/moves of itself; used to prove fast paths construct nothing.
struct CopyCounted {
  CopyCounted() = default;
  CopyCounted(const CopyCounted&) { copies.fetch_add(1, std::memory_order_relaxed); }
  CopyCounted& operator=(const CopyCounted&) = delete;
  CopyCounted(CopyCounted&&) noexcept { moves.fetch_add(1, std::memory_order_relaxed); }
  CopyCounted& operator=(CopyCounted&&) = delete;
  static inline std::atomic<int> copies{0};
  static inline std::atomic<int> moves{0};
};

TEST(EventBus, ZeroSubscriberPublishConstructsNothing) {
  // Publishing to a topic with no subscribers (or one never seen) must take
  // the early-return fast path: no Payload is built, no copy of the value is
  // made, and the call reports zero deliveries.
  ActorSystem system(ActorSystem::Mode::kManual);
  EventBus bus(system);
  const CopyCounted value;
  CopyCounted::copies.store(0);
  CopyCounted::moves.store(0);

  EXPECT_EQ(bus.publish("never-subscribed", value), 0u);  // Unknown topic.
  const auto topic = bus.intern("known-but-empty");
  EXPECT_EQ(bus.publish(topic, value), 0u);  // Interned, zero subscribers.
  EXPECT_EQ(CopyCounted::copies.load(), 0);
  EXPECT_EQ(CopyCounted::moves.load(), 0);
  EXPECT_EQ(system.messages_processed(), 0u);
  EXPECT_EQ(system.dead_letters(), 0u);

  // Sanity: with a subscriber the same publish does copy (exactly once into
  // the envelope for the single-subscriber inline path).
  bus.subscribe(topic, system.spawn_as<Recorder>("sub"));
  EXPECT_EQ(bus.publish(topic, value), 1u);
  EXPECT_EQ(CopyCounted::copies.load(), 1);
}

// --- Ticker ---

TEST(Ticker, FiresOncePerPeriodWithCatchUp) {
  Ticker ticker(0, 100);
  EXPECT_EQ(ticker.due(50), 0u);
  EXPECT_EQ(ticker.due(100), 1u);
  EXPECT_EQ(ticker.due(150), 0u);
  EXPECT_EQ(ticker.due(450), 3u);  // Catch-up after a stall.
  EXPECT_EQ(ticker.last_tick(), 400);
  EXPECT_THROW(Ticker(0, 0), std::invalid_argument);
}

// --- Threaded mode ---

TEST(ThreadedActorSystem, ProcessesAllMessages) {
  ActorSystem system(ActorSystem::Mode::kThreaded, 3);
  class Counting final : public Actor {
   public:
    void receive(Envelope&) override { count.fetch_add(1, std::memory_order_relaxed); }
    std::atomic<int> count{0};
  };
  auto owned = std::make_unique<Counting>();
  Counting* actor = owned.get();
  const auto ref = system.spawn("counting", std::move(owned));

  constexpr int kMessages = 20000;
  std::vector<std::thread> senders;
  for (int t = 0; t < 4; ++t) {
    senders.emplace_back([&ref] {
      for (int i = 0; i < kMessages / 4; ++i) ref.tell(i);
    });
  }
  for (auto& s : senders) s.join();
  system.await_idle();
  EXPECT_EQ(actor->count.load(), kMessages);
  system.shutdown();
}

TEST(ThreadedActorSystem, SingleThreadedReceiveGuarantee) {
  ActorSystem system(ActorSystem::Mode::kThreaded, 4);
  class Exclusive final : public Actor {
   public:
    void receive(Envelope&) override {
      const bool was_busy = busy.exchange(true);
      EXPECT_FALSE(was_busy);  // No concurrent receive for the same actor.
      int spin = 0;
      for (int i = 0; i < 50; ++i) spin += i;
      benchmark_sink += spin;
      busy.store(false);
      ++handled;
    }
    std::atomic<bool> busy{false};
    int handled = 0;  // Safe: only touched inside receive.
    int benchmark_sink = 0;
  };
  auto owned = std::make_unique<Exclusive>();
  Exclusive* actor = owned.get();
  const auto ref = system.spawn("exclusive", std::move(owned));
  std::vector<std::thread> senders;
  for (int t = 0; t < 4; ++t) {
    senders.emplace_back([&ref] {
      for (int i = 0; i < 2000; ++i) ref.tell(i);
    });
  }
  for (auto& s : senders) s.join();
  system.await_idle();
  EXPECT_EQ(actor->handled, 8000);
  system.shutdown();
}

TEST(ThreadedActorSystem, ModeGuards) {
  ActorSystem manual(ActorSystem::Mode::kManual);
  EXPECT_THROW(manual.await_idle(), std::logic_error);
  ActorSystem threaded(ActorSystem::Mode::kThreaded, 1);
  EXPECT_THROW(threaded.drain(), std::logic_error);
  threaded.shutdown();
  EXPECT_THROW(ActorSystem(ActorSystem::Mode::kThreaded, 0), std::invalid_argument);
}

TEST(ActorSystem, ShutdownIsIdempotentAndStopsActors) {
  ActorSystem system(ActorSystem::Mode::kManual);
  auto owned = std::make_unique<Flaky>(SupervisionDirective::kResume);
  Flaky* actor = owned.get();
  system.spawn("f", std::move(owned));
  system.shutdown();
  system.shutdown();
  EXPECT_EQ(actor->stops, 1);
}

}  // namespace
}  // namespace powerapi::actors
