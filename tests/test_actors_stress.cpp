// Concurrency stress tests for the threaded work-stealing dispatcher:
// many producers hammering many actors, ping-pong rings, and spawn/stop
// racing a message storm. Every test asserts zero message loss with exact
// bookkeeping: sent == processed + dead_letters. Designed to run under
// ThreadSanitizer (the CI sanitizer job builds this suite with -fsanitize=
// thread); all cross-thread test state is atomic.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "actors/actor_system.h"

namespace powerapi::actors {
namespace {

/// Counts every message it receives.
class Counter final : public Actor {
 public:
  explicit Counter(std::atomic<std::uint64_t>* total) : total_(total) {}
  void receive(Envelope&) override { total_->fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t>* total_;
};

TEST(ActorStress, ManyProducersManyActorsStorm) {
  constexpr int kProducers = 4;
  constexpr int kActors = 16;
  constexpr int kPerProducer = 25000;
  ActorSystem system(ActorSystem::Mode::kThreaded, 3);
  std::atomic<std::uint64_t> received{0};
  std::vector<ActorRef> actors;
  actors.reserve(kActors);
  for (int i = 0; i < kActors; ++i) {
    actors.push_back(system.spawn_as<Counter>("counter", &received));
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&actors, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        actors[static_cast<std::size_t>(p + i) % actors.size()].tell(i);
      }
    });
  }
  for (auto& t : producers) t.join();
  system.await_idle();

  constexpr std::uint64_t kTotal = std::uint64_t{kProducers} * kPerProducer;
  EXPECT_EQ(received.load(), kTotal);
  EXPECT_EQ(system.messages_processed(), kTotal);
  EXPECT_EQ(system.dead_letters(), 0u);
  system.shutdown();
}

/// Forwards a hop-count token around a ring until it reaches zero.
class RingNode final : public Actor {
 public:
  explicit RingNode(std::atomic<std::uint64_t>* hops) : hops_(hops) {}
  void set_next(ActorRef next) { next_ = next; }

  void receive(Envelope& envelope) override {
    hops_->fetch_add(1, std::memory_order_relaxed);
    if (const int* remaining = envelope.payload.get<int>()) {
      if (*remaining > 0) next_.tell(*remaining - 1, self());
    }
  }

 private:
  std::atomic<std::uint64_t>* hops_;
  ActorRef next_;
};

TEST(ActorStress, PingPongRings) {
  // Worker-to-worker sends: each receive forwards to the next ring node, so
  // messages originate from inside worker threads (the local-queue fast
  // path) rather than from external producers.
  constexpr int kRings = 4;
  constexpr int kNodesPerRing = 4;
  constexpr int kHops = 5000;
  ActorSystem system(ActorSystem::Mode::kThreaded, 3);
  std::atomic<std::uint64_t> hops{0};

  std::vector<ActorRef> entries;
  for (int r = 0; r < kRings; ++r) {
    std::vector<RingNode*> nodes;
    std::vector<ActorRef> refs;
    for (int n = 0; n < kNodesPerRing; ++n) {
      auto owned = std::make_unique<RingNode>(&hops);
      nodes.push_back(owned.get());
      refs.push_back(system.spawn("ring", std::move(owned)));
    }
    for (int n = 0; n < kNodesPerRing; ++n) {
      // Safe before any message flows; receive() only reads next_ afterwards.
      nodes[static_cast<std::size_t>(n)]->set_next(
          refs[static_cast<std::size_t>(n + 1) % refs.size()]);
    }
    entries.push_back(refs.front());
  }
  for (const auto& entry : entries) entry.tell(kHops);
  system.await_idle();

  // Each token is received kHops + 1 times (hop counts kHops .. 0).
  constexpr std::uint64_t kExpected = std::uint64_t{kRings} * (kHops + 1);
  EXPECT_EQ(hops.load(), kExpected);
  EXPECT_EQ(system.messages_processed(), kExpected);
  EXPECT_EQ(system.dead_letters(), 0u);
  system.shutdown();
}

TEST(ActorStress, SpawnDuringStorm) {
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 10000;
  constexpr int kLateActors = 200;
  ActorSystem system(ActorSystem::Mode::kThreaded, 3);
  std::atomic<std::uint64_t> received{0};
  std::vector<ActorRef> actors;
  for (int i = 0; i < 8; ++i) {
    actors.push_back(system.spawn_as<Counter>("early", &received));
  }

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&actors, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        actors[static_cast<std::size_t>(p + i) % actors.size()].tell(i);
      }
    });
  }
  // Spawn fresh actors while the storm runs; each gets one message.
  std::uint64_t late_sent = 0;
  for (int i = 0; i < kLateActors; ++i) {
    const auto late = system.spawn_as<Counter>("late", &received);
    late.tell(i);
    ++late_sent;
  }
  for (auto& t : producers) t.join();
  system.await_idle();

  const std::uint64_t total = std::uint64_t{kProducers} * kPerProducer + late_sent;
  EXPECT_EQ(received.load(), total);
  EXPECT_EQ(system.messages_processed(), total);
  EXPECT_EQ(system.dead_letters(), 0u);
  system.shutdown();
}

TEST(ActorStress, StopDuringStormLosesNothing) {
  // Half the actors are stopped mid-storm. Every sent message must be
  // accounted for exactly once: processed before the stop took effect, or a
  // dead letter (rejected at tell() or drained from a stopped backlog).
  constexpr int kProducers = 3;
  constexpr int kActors = 8;
  constexpr int kPerProducer = 20000;
  ActorSystem system(ActorSystem::Mode::kThreaded, 3);
  std::atomic<std::uint64_t> received{0};
  std::vector<ActorRef> actors;
  for (int i = 0; i < kActors; ++i) {
    actors.push_back(system.spawn_as<Counter>("victim", &received));
  }

  std::atomic<std::uint64_t> sent{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&actors, &sent, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        actors[static_cast<std::size_t>(p + i) % actors.size()].tell(i);
        sent.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Let the storm develop, then stop every other actor under fire.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (int i = 0; i < kActors; i += 2) system.stop(actors[static_cast<std::size_t>(i)]);
  actors[0].tell(-1);  // Actor 0 is stopped: a guaranteed dead letter.
  sent.fetch_add(1, std::memory_order_relaxed);
  for (auto& t : producers) t.join();
  system.await_idle();

  const std::uint64_t total = sent.load();
  EXPECT_EQ(total, std::uint64_t{kProducers} * kPerProducer + 1);
  EXPECT_EQ(system.messages_processed() + system.dead_letters(), total);
  EXPECT_EQ(received.load(), system.messages_processed());
  EXPECT_GT(system.dead_letters(), 0u);  // The stopped half rejected something.
  system.shutdown();
}

}  // namespace
}  // namespace powerapi::actors
