// Tests for the peripheral power models (disk, NIC), their OS integration,
// and the TurboBoost machine extension.
#include <gtest/gtest.h>

#include <memory>

#include "os/system.h"
#include "periph/disk.h"
#include "periph/nic.h"
#include "simcpu/dvfs.h"
#include "simcpu/machine.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

// --- DiskModel ---

TEST(Disk, IdleSpinningBurnsBasePower) {
  periph::DiskModel disk;
  const double joules = disk.tick({}, seconds_to_ns(1));
  EXPECT_NEAR(joules, disk.params().idle_spinning_watts, 1e-9);
  EXPECT_EQ(disk.state(), periph::DiskState::kSpinning);
}

TEST(Disk, IoAddsPerOpAndPerByteEnergy) {
  periph::DiskModel disk;
  periph::DiskDemand demand;
  demand.iops = 100;
  demand.bytes_per_sec = 50e6;
  const double joules = disk.tick(demand, seconds_to_ns(1));
  const auto& p = disk.params();
  EXPECT_NEAR(joules,
              p.idle_spinning_watts + 100 * p.joules_per_op + 50 * p.joules_per_megabyte,
              1e-9);
}

TEST(Disk, DemandSaturatesAtDeviceLimits) {
  periph::DiskModel disk;
  periph::DiskDemand insane;
  insane.iops = 1e9;
  insane.bytes_per_sec = 1e12;
  const double joules = disk.tick(insane, seconds_to_ns(1));
  const auto& p = disk.params();
  EXPECT_NEAR(joules,
              p.idle_spinning_watts + p.max_iops * p.joules_per_op +
                  p.max_bytes_per_sec / 1e6 * p.joules_per_megabyte,
              1e-9);
}

TEST(Disk, SpinsDownAfterIdleTimeoutAndBackUpOnIo) {
  periph::DiskParams params;
  params.spindown_after_ns = seconds_to_ns(1);
  params.spinup_duration_ns = ms_to_ns(500);
  periph::DiskModel disk(params);

  for (int i = 0; i < 1100; ++i) disk.tick({}, ms_to_ns(1));
  EXPECT_EQ(disk.state(), periph::DiskState::kSpunDown);
  EXPECT_NEAR(disk.last_power_watts(), params.spun_down_watts, 1e-9);

  // First IO triggers the spin-up surge...
  periph::DiskDemand demand;
  demand.iops = 10;
  disk.tick(demand, ms_to_ns(1));
  EXPECT_EQ(disk.state(), periph::DiskState::kSpinningUp);
  EXPECT_NEAR(disk.last_power_watts(), params.spinup_watts, 1e-9);
  // ...and after the spin-up duration the disk serves IO again.
  for (int i = 0; i < 600; ++i) disk.tick(demand, ms_to_ns(1));
  EXPECT_EQ(disk.state(), periph::DiskState::kSpinning);
}

TEST(Disk, RejectsBadInput) {
  periph::DiskModel disk;
  EXPECT_THROW(disk.tick({}, 0), std::invalid_argument);
  periph::DiskDemand negative;
  negative.iops = -1;
  EXPECT_THROW(disk.tick(negative, ms_to_ns(1)), std::invalid_argument);
}

// --- NicModel ---

TEST(Nic, EntersLowPowerIdleAfterQuietPeriod) {
  periph::NicModel nic;
  EXPECT_FALSE(nic.in_low_power_idle());
  for (int i = 0; i < 60; ++i) nic.tick({}, ms_to_ns(1));
  EXPECT_TRUE(nic.in_low_power_idle());
  EXPECT_NEAR(nic.last_power_watts(), nic.params().lpi_watts, 1e-9);

  periph::NicDemand demand;
  demand.rx_bytes_per_sec = 1e6;
  nic.tick(demand, ms_to_ns(1));
  EXPECT_FALSE(nic.in_low_power_idle());
}

TEST(Nic, TrafficEnergySplitsTxRx) {
  periph::NicModel nic;
  periph::NicDemand demand;
  demand.tx_bytes_per_sec = 10e6;
  demand.rx_bytes_per_sec = 20e6;
  const double joules = nic.tick(demand, seconds_to_ns(1));
  const auto& p = nic.params();
  EXPECT_NEAR(joules,
              p.link_active_watts + 10 * p.joules_per_megabyte_tx +
                  20 * p.joules_per_megabyte_rx,
              1e-9);
}

TEST(Nic, SaturatesAtLinkRate) {
  periph::NicModel nic;
  periph::NicDemand demand;
  demand.tx_bytes_per_sec = 1e12;
  const double joules = nic.tick(demand, seconds_to_ns(1));
  const auto& p = nic.params();
  EXPECT_NEAR(joules,
              p.link_active_watts + p.link_bytes_per_sec / 1e6 * p.joules_per_megabyte_tx,
              1e-9);
  EXPECT_THROW(nic.tick(demand, 0), std::invalid_argument);
}

// --- OS integration ---

TEST(SystemPeripherals, DisabledByDefault) {
  os::System system(simcpu::i3_2120());
  EXPECT_EQ(system.disk(), nullptr);
  EXPECT_EQ(system.nic(), nullptr);
  system.run_for(ms_to_ns(5));
  EXPECT_DOUBLE_EQ(system.total_energy_joules(), system.machine().total_energy_joules());
  EXPECT_DOUBLE_EQ(system.system_stat().disk_watts, 0.0);
}

TEST(SystemPeripherals, IoWorkloadBurnsPeripheralPower) {
  os::System::Options options;
  options.with_peripherals = true;
  os::System system(simcpu::i3_2120(), std::move(options));
  ASSERT_NE(system.disk(), nullptr);
  system.spawn("fileserver",
               std::make_unique<workloads::SteadyBehavior>(
                   workloads::io_stress(/*disk_mb=*/40, /*net_mb=*/30, 1.0), 0));
  system.run_for(seconds_to_ns(1));

  const auto stat = system.system_stat();
  EXPECT_GT(stat.disk_watts, system.disk()->params().idle_spinning_watts);
  EXPECT_GT(stat.nic_watts, system.nic()->params().lpi_watts);
  // Wall energy = machine + peripherals.
  EXPECT_NEAR(system.total_energy_joules(),
              system.machine().total_energy_joules() +
                  system.disk()->total_energy_joules() +
                  system.nic()->total_energy_joules(),
              1e-9);
  EXPECT_GT(system.total_energy_joules(), system.machine().total_energy_joules());
}

TEST(SystemPeripherals, IdleSystemSpinsDiskDown) {
  os::System::Options options;
  options.with_peripherals = true;
  options.disk.spindown_after_ns = seconds_to_ns(1);
  os::System system(simcpu::i3_2120(), std::move(options));
  system.run_for(seconds_to_ns(2));
  EXPECT_EQ(system.disk()->state(), periph::DiskState::kSpunDown);
  EXPECT_TRUE(system.nic()->in_low_power_idle());
}

// --- TurboBoost ---

TEST(Turbo, SpecValidation) {
  const auto i7 = simcpu::i7_2600();
  EXPECT_TRUE(i7.turbo_boost);
  EXPECT_EQ(i7.turbo_frequencies_hz.size(), 4u);
  EXPECT_EQ(i7.all_frequencies_hz().size(),
            i7.frequencies_hz.size() + i7.turbo_frequencies_hz.size());

  simcpu::CpuSpec bad = i7;
  bad.turbo_boost = false;  // Bins without the feature flag.
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = i7;
  bad.turbo_frequencies_hz = {1e9};  // Below nominal max.
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Turbo, SingleCoreLoadReachesTopBin) {
  simcpu::Machine machine(simcpu::i7_2600());
  std::vector<simcpu::ThreadWork> work(machine.spec().hw_threads());
  work[0] = {true, 1, workloads::cpu_stress()};
  machine.tick(work, ms_to_ns(1));
  EXPECT_DOUBLE_EQ(machine.last_effective_frequency_hz(),
                   machine.spec().turbo_frequencies_hz.back());
}

TEST(Turbo, MoreBusyCoresLowerTheBin) {
  simcpu::Machine machine(simcpu::i7_2600());
  std::vector<simcpu::ThreadWork> work(machine.spec().hw_threads());
  // Two busy cores (threads 0 and 2 on a 2-thread-per-core part).
  work[0] = {true, 1, workloads::cpu_stress()};
  work[2] = {true, 2, workloads::cpu_stress()};
  machine.tick(work, ms_to_ns(1));
  const auto& turbo = machine.spec().turbo_frequencies_hz;
  EXPECT_DOUBLE_EQ(machine.last_effective_frequency_hz(), turbo[turbo.size() - 2]);
}

TEST(Turbo, DisengagesBelowNominalMaxOrOnI3) {
  simcpu::Machine i7(simcpu::i7_2600());
  i7.set_frequency(2.0e9);
  std::vector<simcpu::ThreadWork> work(i7.spec().hw_threads());
  work[0] = {true, 1, workloads::cpu_stress()};
  i7.tick(work, ms_to_ns(1));
  EXPECT_DOUBLE_EQ(i7.last_effective_frequency_hz(), 2.0e9);

  simcpu::Machine i3(simcpu::i3_2120());  // Table 1: no TurboBoost.
  std::vector<simcpu::ThreadWork> i3_work(i3.spec().hw_threads());
  i3_work[0] = {true, 1, workloads::cpu_stress()};
  i3.tick(i3_work, ms_to_ns(1));
  EXPECT_DOUBLE_EQ(i3.last_effective_frequency_hz(), 3.3e9);
}

TEST(Turbo, BurnsMorePowerThanNominalMax) {
  // Same single-thread load on the i7 with and without turbo bins.
  simcpu::CpuSpec no_turbo = simcpu::i7_2600();
  no_turbo.turbo_boost = false;
  no_turbo.turbo_frequencies_hz.clear();
  simcpu::Machine plain(no_turbo);
  simcpu::Machine boosted(simcpu::i7_2600());

  std::vector<simcpu::ThreadWork> work(plain.spec().hw_threads());
  work[0] = {true, 1, workloads::cpu_stress()};
  simcpu::TickResult r_plain;
  simcpu::TickResult r_boost;
  for (int i = 0; i < 10; ++i) {
    r_plain = plain.tick(work, ms_to_ns(1));
    r_boost = boosted.tick(work, ms_to_ns(1));
  }
  // Turbo retires more instructions and burns disproportionately more power
  // (V² rises with the bin).
  EXPECT_GT(boosted.machine_counters().instructions, plain.machine_counters().instructions);
  EXPECT_GT(r_boost.power.cpu_dynamic, r_plain.power.cpu_dynamic * 1.1);
}

TEST(Turbo, VoltageTableExtendsAboveNominal) {
  const auto i7 = simcpu::i7_2600();
  const simcpu::VoltageTable table(i7);
  const double v_nominal = table.voltage_at(i7.max_frequency_hz());
  const double v_turbo = table.voltage_at(i7.turbo_frequencies_hz.back());
  EXPECT_GT(v_turbo, v_nominal);
  EXPECT_GT(table.dynamic_scale(i7.turbo_frequencies_hz.back()), 1.0);
}

}  // namespace
}  // namespace powerapi
