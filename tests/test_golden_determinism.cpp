// Golden determinism: the kManual fleet output is pinned bit-for-bit.
//
// The committed CSVs under tests/golden/ were produced by the per-actor
// (pre-SoA) tick path; the batched SoA hot path must reproduce every watt
// bit-for-bit (doubles are serialized as C99 hexfloats, so a single-ulp
// drift fails the diff). Three seeds sweep heterogeneous fleets — mixed CPU
// specs (different core/SMT counts inside one chunk), a fleet size that
// does not divide evenly into host-chunks, and a per-pid pipeline.
//
// Regenerate (only when an intentional semantic change lands) with:
//   POWERAPI_GOLDEN_REGEN=1 ./test_golden_determinism
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi::api {
namespace {

using util::ms_to_ns;

/// Bit-exact double serialization (C99 hexfloat via libc).
std::string hex_double(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

/// Seed-parameterized per-frequency model over the i3-2120 ladder;
/// formula_for() snaps other specs' frequencies to the nearest entry.
model::CpuPowerModel golden_model(std::uint64_t seed) {
  std::vector<model::FrequencyFormula> formulas;
  std::size_t k = 0;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheReferences,
                hpc::EventId::kCacheMisses};
    const double scale = hz / 3.3e9;
    const double jitter = 1.0 + 0.01 * static_cast<double>((seed + k) % 5);
    f.coefficients = {2.22e-9 * scale * jitter, 2.48e-8 * scale, 1.87e-7 * jitter};
    formulas.push_back(std::move(f));
    ++k;
  }
  return model::CpuPowerModel(30.0 + static_cast<double>(seed % 4), std::move(formulas));
}

simcpu::CpuSpec spec_for(std::size_t index) {
  switch (index % 4) {
    case 0: return simcpu::i3_2120();
    case 1: return simcpu::i7_2600();
    case 2: return simcpu::quad_core();
    default: return simcpu::i3_2120_no_smt();
  }
}

/// Deterministic host: spec cycles through heterogeneous core/SMT counts,
/// workload intensity derives from (seed, index). Every host runs exactly
/// two processes so the per-tick message counts stay symmetric across the
/// fleet (the fleet dimension's summation order is host order).
std::unique_ptr<os::System> make_host(std::uint64_t seed, std::size_t index) {
  auto host = std::make_unique<os::System>(spec_for(index));
  const double duty = 0.15 + 0.1 * static_cast<double>((seed + index) % 7);
  const double working_set = 4e6 * static_cast<double>(1 + (seed + index) % 4);
  host->spawn("app", std::make_unique<workloads::SteadyBehavior>(
                         workloads::cpu_stress(duty), 0));
  host->spawn("mem", std::make_unique<workloads::SteadyBehavior>(
                         workloads::memory_stress(working_set, 0.8), 0));
  return host;
}

void serialize(std::ostream& out, const std::string& label, const std::string& formula,
               const std::vector<AggregatedPower>& rows) {
  for (const auto& row : rows) {
    out << label << ',' << formula << ',' << row.timestamp << ',' << row.pid << ','
        << row.group << ',' << hex_double(row.watts) << '\n';
  }
}

const char* const kFormulas[] = {"powerapi-hpc", "powerspy"};

/// Config A: five heterogeneous hosts (does not divide evenly into the
/// default host-chunk), timestamp dimension, fleet dimension on.
/// `serialize_fleet` is off for the threaded-equivalence check: the fleet
/// dimension sums in host-arrival order, which threading legitimately
/// permutes, while per-host series are single-writer and bit-stable.
void run_fleet_case(std::uint64_t seed, std::ostream& out,
                    actors::ActorSystem::Mode mode = actors::ActorSystem::Mode::kManual,
                    bool serialize_fleet = true) {
  constexpr std::size_t kHosts = 5;
  std::vector<std::unique_ptr<os::System>> hosts;
  for (std::size_t i = 0; i < kHosts; ++i) hosts.push_back(make_host(seed, i));

  FleetMonitor::Options options;
  options.mode = mode;
  FleetMonitor fleet(options);
  std::vector<MemoryReporter*> memory;
  for (std::size_t i = 0; i < kHosts; ++i) {
    PipelineSpec spec;
    spec.period = ms_to_ns(25);
    spec.model = golden_model(seed);
    spec.seed = seed * 1000 + i;
    const std::size_t index = fleet.add_host(*hosts[i], std::move(spec));
    memory.push_back(&fleet.add_memory_reporter(index));
    fleet.monitor_all(index);
  }
  auto& fleet_memory = fleet.add_fleet_reporter();
  fleet.run_for(ms_to_ns(600));
  fleet.finish();

  for (std::size_t i = 0; i < kHosts; ++i) {
    for (const char* formula : kFormulas) {
      serialize(out, "A:h" + std::to_string(i), formula, memory[i]->series(formula));
    }
  }
  if (!serialize_fleet) return;
  for (const char* formula : kFormulas) {
    serialize(out, "A:fleet", formula, fleet_memory.group_series(formula, "(fleet)"));
  }
}

/// Config B: one host under the per-pid dimension — pins per-process rows
/// (activity-only attribution) in addition to machine rows.
void run_per_pid_case(std::uint64_t seed, std::ostream& out) {
  auto host = std::make_unique<os::System>(simcpu::i3_2120());
  const double duty = 0.2 + 0.1 * static_cast<double>(seed % 5);
  host->spawn("app", std::make_unique<workloads::SteadyBehavior>(
                         workloads::cpu_stress(duty), 0));
  host->spawn("mem", std::make_unique<workloads::SteadyBehavior>(
                         workloads::memory_stress(8e6, 0.7), 0));
  host->spawn("mix", std::make_unique<workloads::SteadyBehavior>(
                         workloads::mixed_stress(0.5, 2e6, 0.9), 0));

  FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kManual;
  options.fleet_aggregation = false;
  FleetMonitor fleet(options);
  PipelineSpec spec;
  spec.period = ms_to_ns(25);
  spec.model = golden_model(seed);
  spec.seed = seed * 7919;
  spec.dimension = AggregationDimension::kPid;
  const std::size_t index = fleet.add_host(*host, std::move(spec));
  auto& memory = fleet.add_memory_reporter(index);
  fleet.monitor_all(index);
  fleet.run_for(ms_to_ns(600));
  fleet.finish();

  for (const char* formula : kFormulas) {
    for (const std::int64_t pid : {kMachinePid, std::int64_t{1}, std::int64_t{2},
                                   std::int64_t{3}}) {
      serialize(out, "B:pid", formula, memory.series(formula, pid));
    }
  }
}

std::string run_case(std::uint64_t seed) {
  std::ostringstream out;
  out << "config:host,formula,timestamp_ns,pid,group,watts_hex\n";
  run_fleet_case(seed, out);
  run_per_pid_case(seed, out);
  return out.str();
}

std::string golden_path(std::uint64_t seed) {
  return std::string(POWERAPI_GOLDEN_DIR) + "/fleet_kmanual_seed" +
         std::to_string(seed) + ".csv";
}

class GoldenDeterminism : public testing::TestWithParam<std::uint64_t> {};

TEST_P(GoldenDeterminism, MatchesCommittedCsvBitForBit) {
  const std::uint64_t seed = GetParam();
  const std::string actual = run_case(seed);
  ASSERT_GT(actual.size(), 1000u) << "suspiciously small output";

  if (std::getenv("POWERAPI_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(golden_path(seed), std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path(seed);
    out << actual;
    GTEST_SKIP() << "regenerated " << golden_path(seed);
  }

  std::ifstream in(golden_path(seed), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path(seed)
                         << " — run with POWERAPI_GOLDEN_REGEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();

  // Compare line-by-line for a readable first divergence, then whole-file.
  std::istringstream actual_lines(actual), expected_lines(expected.str());
  std::string a, e;
  std::size_t line = 0;
  while (std::getline(expected_lines, e)) {
    ++line;
    ASSERT_TRUE(std::getline(actual_lines, a))
        << "output truncated at golden line " << line;
    ASSERT_EQ(a, e) << "first divergence at line " << line;
  }
  EXPECT_FALSE(std::getline(actual_lines, a)) << "extra rows beyond the golden file";
}

TEST_P(GoldenDeterminism, RunTwiceIsIdentical) {
  const std::uint64_t seed = GetParam();
  EXPECT_EQ(run_case(seed), run_case(seed));
}

// Threaded-fleet equivalence (the TSan target in CI): the work-stealing
// dispatcher may interleave host-chunks arbitrarily, but every host's
// pipeline is single-writer, so its per-host series must match the kManual
// run bit-for-bit. Fleet-dimension rows are excluded (summation order is
// arrival order under threading).
TEST_P(GoldenDeterminism, ThreadedFleetMatchesManualPerHostSeries) {
  const std::uint64_t seed = GetParam();
  std::ostringstream manual, threaded;
  run_fleet_case(seed, manual, actors::ActorSystem::Mode::kManual,
                 /*serialize_fleet=*/false);
  run_fleet_case(seed, threaded, actors::ActorSystem::Mode::kThreaded,
                 /*serialize_fleet=*/false);
  EXPECT_EQ(manual.str(), threaded.str());
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, GoldenDeterminism,
                         testing::Values(1u, 7u, 42u));

}  // namespace
}  // namespace powerapi::api
