// Tests for the IO counter path: the cumulative iostat-style IoTotals a
// host exposes, the IoSensor that differences them into rates, and the
// datasheet formula that turns those rates into a peripheral power share —
// the disk/network dimension of the paper's component splitting, message
// level (complementing the peripheral POWER model tests in
// test_periph_turbo.cpp).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "os/monitorable_host.h"
#include "os/system.h"
#include "powerapi/formulas.h"
#include "powerapi/sensors.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi::api {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

/// Collects raw payloads of one type from a topic.
template <typename T>
class Collector final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override {
    if (const T* value = envelope.payload.get<T>()) items.push_back(*value);
  }
  std::vector<T> items;
};

struct Harness {
  Harness() : actors(actors::ActorSystem::Mode::kManual), bus(actors) {}
  ~Harness() { actors.shutdown(); }

  template <typename T>
  Collector<T>& collect(const std::string& topic) {
    auto owned = std::make_unique<Collector<T>>();
    Collector<T>& ref = *owned;
    bus.subscribe(topic, actors.spawn("collector", std::move(owned)));
    return ref;
  }

  actors::ActorSystem actors;
  actors::EventBus bus;
};

/// A host whose IO totals are scripted by the test: the sensor's input is
/// then exact, so rate assertions can be EXPECT_DOUBLE_EQ, not NEAR.
class ScriptedIoHost final : public os::MonitorableHost {
 public:
  ScriptedIoHost() : disk_(periph::DiskParams{}), nic_(periph::NicParams{}) {}

  std::vector<os::Pid> pids() const override { return {}; }
  std::optional<os::ProcStat> proc_stat(os::Pid) const override {
    return std::nullopt;
  }
  os::SystemStat system_stat() const override { return {}; }
  util::TimestampNs now_ns() const override { return now_; }
  const simcpu::CounterBlock& machine_counters() const override {
    return counters_;
  }
  std::size_t hw_threads() const override { return 4; }
  double total_energy_joules() const override { return 0.0; }
  double package_energy_joules() const override { return 0.0; }
  const os::IoTotals& io_totals() const override { return totals_; }
  const periph::DiskModel* disk() const override { return &disk_; }
  const periph::NicModel* nic() const override { return &nic_; }
  void advance(util::DurationNs duration) override { now_ += duration; }

  os::IoTotals totals_;
  util::TimestampNs now_ = 0;

 private:
  simcpu::CounterBlock counters_;
  periph::DiskModel disk_;
  periph::NicModel nic_;
};

// --- IoTotals accounting (os::System with peripherals) ---

TEST(IoTotals, ZeroWithoutPeripheralsAndMonotonicWithThem) {
  os::System plain(simcpu::i3_2120());
  plain.run_for(seconds_to_ns(1));
  EXPECT_DOUBLE_EQ(plain.io_totals().disk_ops, 0.0);
  EXPECT_DOUBLE_EQ(plain.io_totals().disk_bytes, 0.0);
  EXPECT_DOUBLE_EQ(plain.io_totals().net_bytes, 0.0);

  os::System::Options options;
  options.with_peripherals = true;
  os::System system(simcpu::i3_2120(), std::move(options));
  system.spawn("fileserver",
               std::make_unique<workloads::SteadyBehavior>(
                   workloads::io_stress(/*disk_mb=*/40, /*net_mb=*/30, 1.0), 0));
  os::IoTotals last{};
  for (int i = 0; i < 5; ++i) {
    system.run_for(ms_to_ns(200));
    const os::IoTotals& now = system.io_totals();
    EXPECT_GE(now.disk_ops, last.disk_ops);
    EXPECT_GE(now.disk_bytes, last.disk_bytes);
    EXPECT_GE(now.net_bytes, last.net_bytes);
    last = now;
  }
  EXPECT_GT(last.disk_bytes, 0.0);
  EXPECT_GT(last.net_bytes, 0.0);
}

TEST(IoTotals, AccountingIsDeterministic) {
  auto build = [] {
    os::System::Options options;
    options.with_peripherals = true;
    auto system = std::make_unique<os::System>(simcpu::i3_2120(), std::move(options));
    system->spawn("fileserver",
                  std::make_unique<workloads::SteadyBehavior>(
                      workloads::io_stress(20, 10, 0.8), 0));
    return system;
  };
  auto a = build();
  auto b = build();
  a->run_for(seconds_to_ns(2));
  b->run_for(seconds_to_ns(2));
  EXPECT_DOUBLE_EQ(a->io_totals().disk_ops, b->io_totals().disk_ops);
  EXPECT_DOUBLE_EQ(a->io_totals().disk_bytes, b->io_totals().disk_bytes);
  EXPECT_DOUBLE_EQ(a->io_totals().net_bytes, b->io_totals().net_bytes);
}

// --- IoSensor: totals → rates ---

TEST(IoSensor, DifferencesTotalsIntoExactRates) {
  ScriptedIoHost host;
  Harness h;
  auto& reports = h.collect<SensorReport>("sensor:io");
  const auto sensor = h.actors.spawn_as<IoSensor>(
      "sensor", h.bus, h.bus.intern("sensor:io"), host);

  host.totals_ = {100.0, 1e6, 2e6};
  sensor.tell(MonitorTick{seconds_to_ns(1)});
  h.actors.drain();
  EXPECT_TRUE(reports.items.empty());  // Priming tick.

  host.totals_ = {150.0, 3e6, 6e6};  // +50 ops, +2 MB disk, +4 MB net.
  sensor.tell(MonitorTick{seconds_to_ns(3)});  // 2 s window.
  h.actors.drain();
  ASSERT_EQ(reports.items.size(), 1u);
  const SensorReport& r = reports.items[0];
  EXPECT_EQ(r.pid, kMachinePid);
  EXPECT_EQ(r.sensor, SensorKind::kIo);
  EXPECT_DOUBLE_EQ(r.window_seconds, 2.0);
  EXPECT_DOUBLE_EQ(r.disk_iops, 25.0);
  EXPECT_DOUBLE_EQ(r.disk_bytes_per_sec, 1e6);
  EXPECT_DOUBLE_EQ(r.net_bytes_per_sec, 2e6);
}

TEST(IoSensor, CounterRegressionReprimesInsteadOfNegativeRates) {
  ScriptedIoHost host;
  Harness h;
  auto& reports = h.collect<SensorReport>("sensor:io");
  const auto sensor = h.actors.spawn_as<IoSensor>(
      "sensor", h.bus, h.bus.intern("sensor:io"), host);

  host.totals_ = {100.0, 1e6, 1e6};
  sensor.tell(MonitorTick{seconds_to_ns(1)});
  host.totals_ = {200.0, 2e6, 2e6};
  sensor.tell(MonitorTick{seconds_to_ns(2)});
  h.actors.drain();
  ASSERT_EQ(reports.items.size(), 1u);

  // The counter source resets (device re-probe / wraparound at the OS
  // boundary): totals regress. Differencing across the reset would yield a
  // negative rate — the sensor must skip the tick and re-prime instead.
  host.totals_ = {10.0, 1e5, 1e5};
  sensor.tell(MonitorTick{seconds_to_ns(3)});
  h.actors.drain();
  ASSERT_EQ(reports.items.size(), 1u);  // No report on the reset tick.

  // The next window differences against the POST-reset baseline.
  host.totals_ = {20.0, 2e5, 3e5};
  sensor.tell(MonitorTick{seconds_to_ns(4)});
  h.actors.drain();
  ASSERT_EQ(reports.items.size(), 2u);
  const SensorReport& r = reports.items[1];
  EXPECT_DOUBLE_EQ(r.disk_iops, 10.0);
  EXPECT_DOUBLE_EQ(r.disk_bytes_per_sec, 1e5);
  EXPECT_DOUBLE_EQ(r.net_bytes_per_sec, 2e5);
}

TEST(IoSensor, SilentWhenHostHasNoDisk) {
  os::System system(simcpu::i3_2120());  // No peripherals.
  Harness h;
  auto& reports = h.collect<SensorReport>("sensor:io");
  const auto sensor = h.actors.spawn_as<IoSensor>(
      "sensor", h.bus, h.bus.intern("sensor:io"), system);
  for (int i = 1; i <= 3; ++i) {
    sensor.tell(MonitorTick{seconds_to_ns(i)});
    h.actors.drain();
  }
  EXPECT_TRUE(reports.items.empty());
}

// --- The rates' contribution to the datasheet power estimate ---

TEST(IoFormula, ChargesDatasheetEnergiesForReportedRates) {
  Harness h;
  auto& estimates = h.collect<PowerEstimate>("power:estimate");
  const periph::DiskParams disk;
  const periph::NicParams nic;
  const auto formula = h.actors.spawn_as<IoFormula>(
      "formula", h.bus, h.bus.intern("power:estimate"), disk, nic);

  SensorReport report;
  report.timestamp = seconds_to_ns(2);
  report.pid = kMachinePid;
  report.sensor = SensorKind::kIo;
  report.window_seconds = 1.0;
  report.disk_iops = 50.0;
  report.disk_bytes_per_sec = 10e6;
  report.net_bytes_per_sec = 4e6;
  formula.tell(report);
  h.actors.drain();

  ASSERT_EQ(estimates.items.size(), 1u);
  const PowerEstimate& e = estimates.items[0];
  EXPECT_EQ(e.formula, "io-datasheet");
  EXPECT_EQ(e.pid, kMachinePid);
  const double expected = disk.idle_spinning_watts + nic.link_active_watts +
                          50.0 * disk.joules_per_op +
                          10.0 * disk.joules_per_megabyte +
                          4.0 * (nic.joules_per_megabyte_tx +
                                 nic.joules_per_megabyte_rx) / 2.0;
  EXPECT_DOUBLE_EQ(e.watts, expected);
}

TEST(IoFormula, IgnoresReportsFromOtherSensors) {
  Harness h;
  auto& estimates = h.collect<PowerEstimate>("power:estimate");
  const auto formula = h.actors.spawn_as<IoFormula>(
      "formula", h.bus, h.bus.intern("power:estimate"), periph::DiskParams{},
      periph::NicParams{});
  SensorReport report;
  report.sensor = SensorKind::kHpc;  // Not an IO report.
  formula.tell(report);
  h.actors.drain();
  EXPECT_TRUE(estimates.items.empty());
}

}  // namespace
}  // namespace powerapi::api
