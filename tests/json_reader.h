// Minimal validating JSON reader shared by the observability tests: checks
// that emitted trace / reporter / status output is one complete well-formed
// JSON value. A validator, not a parser — tests that need field values grep
// the raw text after validity is established.
#pragma once

#include <cctype>
#include <cstddef>
#include <string_view>

namespace powerapi::testing {

class JsonReader {
 public:
  explicit JsonReader(std::string_view text) : text_(text) {}

  /// Parses one complete JSON value and requires end-of-input after it.
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= text_.size() || text_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        ++pos_;
      }
    }
    return false;
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }
  bool peek(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace powerapi::testing
