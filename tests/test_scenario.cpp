// Tests for the declarative scenario layer: parser diagnostics (every error
// carries file:line and never crashes), the serialize/parse round trip, the
// runner's determinism contract (run-twice bit-identical under kManual,
// threaded == manual per-host series) and a pinned big.LITTLE golden CSV.
//
// Regenerate the golden (only on an intentional semantic change) with:
//   POWERAPI_GOLDEN_REGEN=1 ./test_scenario
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/scenario_parser.h"
#include "scenario/scenario_runner.h"
#include "scenario/scenario_spec.h"

namespace powerapi::scenario {
namespace {

ScenarioSpec parse(const std::string& text) {
  return ScenarioParser::parse_string(text, "test.scenario");
}

/// Asserts parsing fails with a ScenarioError whose message contains every
/// given fragment — in particular the "file:line" prefix.
void expect_error(const std::string& text, const std::vector<std::string>& fragments) {
  try {
    parse(text);
    FAIL() << "expected ScenarioError, parse succeeded";
  } catch (const ScenarioError& e) {
    const std::string what = e.what();
    for (const std::string& fragment : fragments) {
      EXPECT_NE(what.find(fragment), std::string::npos)
          << "missing '" << fragment << "' in: " << what;
    }
  }
}

// --- Parser diagnostics ---

TEST(ScenarioParser, EmptyAndHeaderlessFilesFail) {
  expect_error("", {"test.scenario:1", "empty scenario"});
  expect_error("# only a comment\n", {"test.scenario:1", "empty scenario"});
  expect_error("duration 5s\n", {"test.scenario:1", "scenario must start"});
}

TEST(ScenarioParser, UnknownDirectiveCarriesLine) {
  expect_error("scenario x\nseed 1\nfrobnicate 3\n",
               {"test.scenario:3", "unknown directive 'frobnicate'"});
}

TEST(ScenarioParser, UnknownSectionKeyCarriesLine) {
  expect_error(
      "scenario x\nworkload w\n  kind steady\n  colour blue\nend\n",
      {"test.scenario:4", "unknown workload key 'colour'"});
  expect_error(
      "scenario x\ncpu c custom\n  cores 2\n  turbo on\nend\n",
      {"test.scenario:4", "unknown cpu key 'turbo'"});
}

TEST(ScenarioParser, UnknownKeyValueArgumentRejected) {
  expect_error("scenario x\nmonitor period=250ms flavour=mint\n",
               {"test.scenario:2", "unknown monitor argument 'flavour'"});
  expect_error(
      "scenario x\nworkload w\n  kind steady\n  profile cpu speed=11\nend\n",
      {"test.scenario:4", "unknown profile argument 'speed'"});
}

TEST(ScenarioParser, BadEnumValuesAreDiagnosed) {
  expect_error("scenario x\nworkload w\n  kind sinusoidal\nend\n",
               {"test.scenario:3", "unknown workload kind 'sinusoidal'"});
  expect_error("scenario x\ncpu c pentium4\n",
               {"test.scenario:2", "unknown cpu preset 'pentium4'"});
  expect_error("scenario x\nmonitor dimension=hour\n",
               {"test.scenario:2", "unknown aggregation dimension 'hour'"});
  expect_error("scenario x\nformula magic\n",
               {"test.scenario:2", "unknown formula mode 'magic'"});
}

TEST(ScenarioParser, DuplicateIdsCiteTheFirstDeclaration) {
  expect_error(
      "scenario x\ncpu c i3_2120\nhost a\n  cpu c\nend\nhost a\n  cpu c\nend\n",
      {"test.scenario:6", "duplicate host id 'a'", "line 3"});
  expect_error("scenario x\ncpu c i3_2120\ncpu c i7_2600\n",
               {"test.scenario:3", "duplicate cpu id 'c'", "line 2"});
}

TEST(ScenarioParser, TruncatedSectionNamesTheOpeningLine) {
  expect_error("scenario x\ncpu c i3_2120\nhost a\n  cpu c\n",
               {"unexpected end of file", "opened at line 3", "no 'end'"});
}

TEST(ScenarioParser, MalformedValuesAreDiagnosed) {
  expect_error("scenario x\nduration banana\n", {"test.scenario:2", "bad duration"});
  expect_error("scenario x\nseed -3\n",
               {"test.scenario:2", "non-negative integer"});
  expect_error("scenario x\nmonitor period=0ms\n",
               {"test.scenario:2", "must be positive"});
}

TEST(ScenarioParser, CrossReferencesAreValidated) {
  expect_error("scenario x\nhost a\n  cpu ghost\nend\n",
               {"test.scenario:3", "undeclared cpu 'ghost'"});
  expect_error(
      "scenario x\ncpu c i3_2120\nhost a\n  cpu c\n  run ghost\nend\n",
      {"test.scenario:5", "undeclared workload 'ghost'"});
  expect_error(
      "scenario x\ncpu c i3_2120\nhost a\n  cpu c\nend\n"
      "inject at=1s host=nope frequency=2GHz\n",
      {"test.scenario:6", "unknown host 'nope'"});
  expect_error(
      "scenario x\nduration 5s\ncpu c i3_2120\nhost a\n  cpu c\nend\n"
      "inject at=9s host=a frequency=2GHz\n",
      {"test.scenario:7", "beyond the scenario duration"});
}

TEST(ScenarioParser, SemanticRulesAtEndOfFile) {
  expect_error("scenario x\nseed 1\n", {"declares no hosts"});
  expect_error(
      "scenario x\ncpu c i3_2120\nhost a\n  cpu c\nend\ncalibration on\n",
      {"calibration requires a formula"});
  // Host group "a" count=2 expands to a0/a1, colliding with explicit "a1".
  expect_error(
      "scenario x\ncpu c i3_2120\nhost a\n  count 2\n  cpu c\nend\n"
      "host a1\n  cpu c\nend\n",
      {"expanded host ids collide"});
}

// --- Round trip ---

const char* const kFullScenario = R"(scenario everything
seed 77
duration 2s
tick 1ms

cpu desk i3_2120
cpu soc custom
  cores 4
  threads_per_core 1
  tdp 15
  speedstep on
  c_states off
  ladder 1.0GHz,1.5GHz,2.0GHz
  cluster name=big cores=2 ladder=1.0GHz,1.5GHz,2.0GHz
  cluster name=little cores=2 ladder=0.5GHz,1.0GHz perf=0.6 energy=0.4
end

workload s
  kind steady
  profile mixed intensity=0.8 working_set=4MB share=0.3
  jitter on
  duration 1500ms
end
workload b
  kind bursty
  profile cpu intensity=0.9
  mean_burst 40ms
  mean_gap 90ms
end
workload p
  kind phased
  phase profile=cpu intensity=0.9 duration=200ms
  phase profile=memory working_set=16MB duration=300ms
  loop on
end
workload l
  kind llm
  mean_interarrival 150ms
  working_set 32MB
end
workload d
  kind diurnal
  profile cpu intensity=1.0
  period 2s
  valley 0.2
  peak 0.9
  flash_crowds off
  spread_phase on
end

host fat
  count 2
  cpu desk
  run s copies=2 name=svc
  run b
end
host thin
  cpu soc
  daemon off
  run l
  run d name=edge
end

monitor period=100ms dimension=pid powerspy=on rapl=off all=on
formula fixed idle=30.5 coefficients=2.0e-9,3.0e-8,1.0e-7
calibration on drift_window=8 threshold=1.5 min_samples=10 refit_interval=2s
fleet aggregation=on workers=3 chunk=2
inject at=500ms host=fat0 frequency=2.0GHz
inject at=800ms host=thin spawn=b name=extra
inject at=1200ms host=thin kill=extra
inject at=1500ms host=all shift=svc:b
)";

TEST(ScenarioRoundTrip, SerializeParseIsIdentity) {
  const ScenarioSpec spec = parse(kFullScenario);
  EXPECT_EQ(spec.expanded_host_ids(),
            (std::vector<std::string>{"fat0", "fat1", "thin"}));
  const std::string text = serialize(spec);
  const ScenarioSpec reparsed = ScenarioParser::parse_string(text, "roundtrip");
  EXPECT_EQ(spec, reparsed);
  // And serialization is a fixed point.
  EXPECT_EQ(text, serialize(reparsed));
}

TEST(ScenarioRoundTrip, EveryCommittedScenarioRoundTrips) {
  std::size_t seen = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(POWERAPI_SCENARIO_DIR)) {
    if (entry.path().extension() != ".scenario") continue;
    ++seen;
    SCOPED_TRACE(entry.path().string());
    const ScenarioSpec spec = ScenarioParser::parse_file(entry.path().string());
    const ScenarioSpec reparsed =
        ScenarioParser::parse_string(serialize(spec), entry.path().string());
    EXPECT_EQ(spec, reparsed);
    EXPECT_FALSE(spec.expanded_host_ids().empty());
  }
  EXPECT_GE(seen, 6u) << "committed scenario zoo went missing";
}

// --- Runner determinism ---

/// A small fleet with a big.LITTLE part, injections and a fixed formula —
/// everything deterministic, sized to run in well under a second of wall
/// time.
const char* const kRunnerScenario = R"(scenario runner_unit
seed 9
duration 600ms
tick 1ms
cpu desk i3_2120
cpu mob big_little
workload w
  kind bursty
  profile mixed intensity=0.8 working_set=6MB share=0.4
  mean_burst 30ms
  mean_gap 50ms
end
workload llm
  kind llm
  mean_interarrival 80ms
  mean_prefill 20ms
  mean_decode 60ms
end
host a
  count 2
  cpu desk
  run w copies=2 name=app
end
host m
  cpu mob
  run llm name=serve
end
monitor period=25ms dimension=timestamp
formula fixed idle=31.0 coefficients=2.2e-9,2.5e-8,1.9e-7
fleet aggregation=on workers=3 chunk=2
inject at=200ms host=a0 frequency=1.6GHz
inject at=300ms host=m spawn=w name=extra
inject at=450ms host=m kill=extra
)";

std::string run_to_csv(actors::ActorSystem::Mode mode) {
  ScenarioRunner runner(parse(kRunnerScenario));
  RunOptions options;
  options.mode = mode;
  const RunResult result = runner.run(options);
  std::ostringstream out;
  write_csv(out, result);
  return out.str();
}

TEST(ScenarioRunner, ManualModeIsBitIdenticalAcrossRuns) {
  const std::string first = run_to_csv(actors::ActorSystem::Mode::kManual);
  const std::string second = run_to_csv(actors::ActorSystem::Mode::kManual);
  ASSERT_GT(first.size(), 500u);
  EXPECT_EQ(first, second);
}

TEST(ScenarioRunner, ThreadedMatchesManualPerHostSeries) {
  ScenarioRunner manual(parse(kRunnerScenario));
  ScenarioRunner threaded(parse(kRunnerScenario));
  RunOptions mo;
  mo.mode = actors::ActorSystem::Mode::kManual;
  RunOptions to;
  to.mode = actors::ActorSystem::Mode::kThreaded;
  const RunResult a = manual.run(mo);
  const RunResult b = threaded.run(to);
  // Per-host, per-formula series are single-writer and must agree
  // bit-for-bit. Threading may interleave the two formula streams'
  // arrival order within a host, and the fleet dimension sums in
  // host-arrival order, so both are normalized/excluded (same contract as
  // the fleet golden tests).
  auto by_formula = [](const std::vector<api::AggregatedPower>& rows,
                       const std::string& formula) {
    std::vector<api::AggregatedPower> out;
    for (const auto& row : rows) {
      if (row.formula == formula) out.push_back(row);
    }
    return out;
  };
  ASSERT_EQ(a.hosts.size(), b.hosts.size());
  for (std::size_t h = 0; h < a.hosts.size(); ++h) {
    SCOPED_TRACE(a.hosts[h].id);
    EXPECT_EQ(a.hosts[h].id, b.hosts[h].id);
    ASSERT_EQ(a.hosts[h].rows.size(), b.hosts[h].rows.size());
    for (const char* formula : {"powerapi-hpc", "powerspy"}) {
      SCOPED_TRACE(formula);
      const auto sa = by_formula(a.hosts[h].rows, formula);
      const auto sb = by_formula(b.hosts[h].rows, formula);
      ASSERT_EQ(sa.size(), sb.size());
      ASSERT_FALSE(sa.empty());
      for (std::size_t r = 0; r < sa.size(); ++r) {
        ASSERT_EQ(sa[r].timestamp, sb[r].timestamp);
        ASSERT_EQ(sa[r].pid, sb[r].pid);
        ASSERT_EQ(sa[r].group, sb[r].group);
        ASSERT_EQ(sa[r].watts, sb[r].watts);  // Bit-exact, not approximately.
      }
    }
  }
}

TEST(ScenarioRunner, MatchesCommittedGoldenCsvBitForBit) {
  const std::string actual = run_to_csv(actors::ActorSystem::Mode::kManual);
  const std::string path =
      std::string(POWERAPI_GOLDEN_DIR) + "/scenario_big_little.csv";

  if (std::getenv("POWERAPI_GOLDEN_REGEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " (run with POWERAPI_GOLDEN_REGEN=1)";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "scenario kManual output drifted from the committed golden";
}

TEST(ScenarioRunner, RespectsMaxDurationCap) {
  ScenarioRunner runner(parse(kRunnerScenario));
  RunOptions options;
  options.max_duration = util::ms_to_ns(100);
  const RunResult result = runner.run(options);
  for (const auto& host : result.hosts) {
    for (const auto& row : host.rows) {
      EXPECT_LE(row.timestamp, util::ms_to_ns(100));
    }
  }
}

}  // namespace
}  // namespace powerapi::scenario
