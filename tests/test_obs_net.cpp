// Distributed observability plane: obs frame round trips and the PR 5
// byte-identity guarantee, TraceMerger clock-offset recovery against
// injected fake offsets, the CollectorStatus ledger + TCP status listener,
// WatchdogActor alert rules (all four, plus rate limiting and counter-reset
// re-baselining), the BusBridge remote-gauge lifecycle (stale expiry,
// reconnect reset, label collisions) and the whole plane end-to-end over a
// real loopback socket.
#include <gtest/gtest.h>
#include <sys/socket.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "net/bus_bridge.h"
#include "net/collector_server.h"
#include "net/collector_status.h"
#include "net/socket.h"
#include "net/telemetry_client.h"
#include "net/watchdog.h"
#include "net/wire.h"
#include "obs/observability.h"
#include "obs/trace_merge.h"
#include "util/units.h"

#include "json_reader.h"

namespace powerapi::net {
namespace {

using powerapi::testing::JsonReader;
using util::seconds_to_ns;

api::PowerEstimate make_estimate(std::int64_t ts_ns, double watts) {
  api::PowerEstimate e;
  e.timestamp = ts_ns;
  e.pid = api::kMachinePid;
  e.formula = "powerapi-hpc";
  e.watts = watts;
  e.model_version = 1;
  return e;
}

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out += digits[b >> 4];
    out += digits[b & 0xF];
  }
  return out;
}

/// WireSink recording obs frames (and everything else) for assertions.
struct ObsRecordingSink : WireSink {
  void on_hello(std::string_view agent_id, std::uint8_t) override {
    hellos.emplace_back(agent_id);
  }
  void on_estimate(const api::PowerEstimate& estimate) override {
    estimates.push_back(estimate);
  }
  void on_aggregated(const api::AggregatedPower& row) override {
    aggregated.push_back(row);
  }
  void on_metric(std::string_view name, obs::MetricKind, double value) override {
    metrics.emplace_back(std::string(name), value);
  }
  void on_metrics_snapshot(std::int64_t send_wall_ns,
                           const obs::MetricsSnapshot& snapshot) override {
    snapshot_stamps.push_back(send_wall_ns);
    snapshots.push_back(snapshot);
  }
  void on_spans(std::int64_t send_wall_ns,
                const std::vector<RemoteSpan>& remote) override {
    span_stamps.push_back(send_wall_ns);
    spans.emplace_back();
    for (const RemoteSpan& span : remote) {
      spans.back().push_back({std::string(span.name), span.tid, span.ts_ns,
                              span.dur_ns, span.seq});
    }
  }
  void on_bye() override { ++byes; }

  struct OwnedSpan {
    std::string name;
    std::uint32_t tid;
    std::int64_t ts_ns;
    std::int64_t dur_ns;
    std::uint64_t seq;
  };
  std::vector<std::string> hellos;
  std::vector<api::PowerEstimate> estimates;
  std::vector<api::AggregatedPower> aggregated;
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::int64_t> snapshot_stamps;
  std::vector<obs::MetricsSnapshot> snapshots;
  std::vector<std::int64_t> span_stamps;
  std::vector<std::vector<OwnedSpan>> spans;
  int byes = 0;
};

// --- PR 5 byte identity ---

// The exact bytes PR 5's encoder produced for this hello/batch/bye
// sequence. The obs frame kinds extend the wire; with no obs cadence the
// stream must stay bit-identical so old collectors keep working.
constexpr const char* kGoldenPr5Hex =
    "505741500101040000000f6ea52e010268305057415001027000000009aac1770100"
    "0c706f7765726170692d6870630280cab5ee0101007b14ae47e17a3f40010280cab5"
    "ee010100000000000020404001010107"
    "28666c6565742903000100013d0ad7a370dd4f4001021a6e65742e636c69656e742e"
    "7265636f7264735f64726f70706564040002000000000000000050574150010300000"
    "00089671d22";

std::vector<std::uint8_t> golden_pr5_stream() {
  WireEncoder encoder;
  std::vector<std::uint8_t> stream;
  auto append = [&stream](const std::vector<std::uint8_t>& frame) {
    stream.insert(stream.end(), frame.begin(), frame.end());
  };
  append(WireEncoder::hello_frame("h0"));
  encoder.add(make_estimate(250'000'000, 31.48));
  encoder.add(make_estimate(500'000'000, 32.25));
  api::AggregatedPower row;
  row.timestamp = 500'000'000;
  row.pid = api::kMachinePid;
  row.group = "(fleet)";
  row.formula = "powerapi-hpc";
  row.watts = 63.73;
  encoder.add(row);
  encoder.add_metric("net.client.records_dropped", obs::MetricKind::kCounter, 0.0);
  append(encoder.take_batch_frame());
  append(WireEncoder::bye_frame());
  return stream;
}

TEST(WireCompat, NoObsCadenceIsByteIdenticalToPr5) {
  EXPECT_EQ(to_hex(golden_pr5_stream()), kGoldenPr5Hex);
}

TEST(WireCompat, DecoderAcceptsPr5Stream) {
  const std::vector<std::uint8_t> stream = golden_pr5_stream();
  FrameDecoder decoder;
  ObsRecordingSink sink;
  ASSERT_TRUE(decoder.consume(stream.data(), stream.size(), sink))
      << decoder.error();
  ASSERT_EQ(sink.hellos.size(), 1u);
  EXPECT_EQ(sink.hellos[0], "h0");
  ASSERT_EQ(sink.estimates.size(), 2u);
  EXPECT_DOUBLE_EQ(sink.estimates[0].watts, 31.48);
  EXPECT_DOUBLE_EQ(sink.estimates[1].watts, 32.25);
  ASSERT_EQ(sink.aggregated.size(), 1u);
  ASSERT_EQ(sink.metrics.size(), 1u);
  EXPECT_EQ(sink.byes, 1);
  // A PR 5 stream carries no obs frames, and decoding it must not count any.
  EXPECT_EQ(decoder.snapshots_decoded(), 0u);
  EXPECT_EQ(decoder.spans_decoded(), 0u);
  EXPECT_EQ(decoder.records_decoded(), 4u);
}

// --- Obs frame round trips ---

TEST(WireObs, MetricsSnapshotRoundTripsValuesAndHistograms) {
  obs::MetricsRegistry registry;
  registry.counter("work.count").add(42);
  registry.gauge("self.watts").set(0.125);
  obs::Histogram& hist = registry.histogram("tick.latency_ns");
  for (int i = 0; i < 100; ++i) hist.record(1000 + i);
  hist.record(50'000'000);
  const obs::MetricsSnapshot sent = registry.snapshot();

  WireEncoder encoder;
  const auto frame = encoder.take_metrics_frame(sent, /*send_wall_ns=*/123456789);
  FrameDecoder decoder;
  ObsRecordingSink sink;
  ASSERT_TRUE(decoder.consume(frame.data(), frame.size(), sink)) << decoder.error();
  EXPECT_EQ(decoder.snapshots_decoded(), 1u);
  EXPECT_EQ(decoder.records_decoded(), 0u);  // Obs records are not batch records.

  ASSERT_EQ(sink.snapshots.size(), 1u);
  EXPECT_EQ(sink.snapshot_stamps[0], 123456789);
  const obs::MetricsSnapshot& got = sink.snapshots[0];
  ASSERT_EQ(got.metrics.size(), sent.metrics.size());
  EXPECT_EQ(got.value_of("work.count"), 42.0);
  EXPECT_DOUBLE_EQ(got.value_of("self.watts"), 0.125);

  const obs::MetricValue* want = sent.find("tick.latency_ns");
  const obs::MetricValue* have = got.find("tick.latency_ns");
  ASSERT_NE(want, nullptr);
  ASSERT_NE(have, nullptr);
  EXPECT_EQ(have->kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(have->hist.count, want->hist.count);
  EXPECT_EQ(have->hist.overflow, want->hist.overflow);
  EXPECT_DOUBLE_EQ(have->hist.sum, want->hist.sum);
  ASSERT_EQ(have->hist.buckets.size(), want->hist.buckets.size());
  for (std::size_t i = 0; i < want->hist.buckets.size(); ++i) {
    EXPECT_EQ(have->hist.buckets[i], want->hist.buckets[i]) << "bucket " << i;
  }
  EXPECT_DOUBLE_EQ(have->hist.percentile(0.5), want->hist.percentile(0.5));
}

TEST(WireObs, SpansRoundTripThroughTheSharedDictionary) {
  obs::TraceCollector trace;
  const auto step = trace.intern("agent/step");
  const auto tick = trace.intern("agent/tick");
  trace.complete(step, 1'000'000, 250'000, /*seq=*/7);
  trace.instant(tick, 1'500'000, /*seq=*/8);
  trace.complete(step, 2'000'000, 125'000, /*seq=*/9);
  std::vector<obs::TraceCollector::Span> drained;
  ASSERT_EQ(trace.drain(drained), 3u);

  WireEncoder encoder;
  const auto first = encoder.take_spans_frame(drained, trace, /*send_wall_ns=*/555);
  FrameDecoder decoder;
  ObsRecordingSink sink;
  ASSERT_TRUE(decoder.consume(first.data(), first.size(), sink)) << decoder.error();
  EXPECT_EQ(decoder.spans_decoded(), 3u);

  ASSERT_EQ(sink.spans.size(), 1u);
  EXPECT_EQ(sink.span_stamps[0], 555);
  const auto& got = sink.spans[0];
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].name, "agent/step");
  EXPECT_EQ(got[0].ts_ns, 1'000'000);
  EXPECT_EQ(got[0].dur_ns, 250'000);
  EXPECT_EQ(got[0].seq, 7u);
  EXPECT_EQ(got[1].name, "agent/tick");
  EXPECT_EQ(got[1].ts_ns, 1'500'000);
  EXPECT_LT(got[1].dur_ns, 0);  // Instant event.
  EXPECT_EQ(got[2].ts_ns, 2'000'000);

  // A second frame with the same names reuses the dictionary: smaller.
  trace.complete(step, 3'000'000, 100'000, 10);
  drained.clear();
  trace.drain(drained);
  const auto second = encoder.take_spans_frame(drained, trace, 556);
  EXPECT_LT(second.size(), first.size());
  ASSERT_TRUE(decoder.consume(second.data(), second.size(), sink));
  ASSERT_EQ(sink.spans.size(), 2u);
  EXPECT_EQ(sink.spans[1][0].name, "agent/step");
}

TEST(WireObs, BatchAndObsFramesShareOneDictionaryStream) {
  obs::MetricsRegistry registry;
  registry.counter("net.client.records_dropped").add(3);
  WireEncoder encoder;
  encoder.add(make_estimate(250'000'000, 30.0));
  const auto batch1 = encoder.take_batch_frame();
  const auto obs_frame = encoder.take_metrics_frame(registry.snapshot(), 1);
  encoder.add_metric("net.client.records_dropped", obs::MetricKind::kCounter, 3.0);
  const auto batch2 = encoder.take_batch_frame();

  FrameDecoder decoder;
  ObsRecordingSink sink;
  ASSERT_TRUE(decoder.consume(batch1.data(), batch1.size(), sink));
  ASSERT_TRUE(decoder.consume(obs_frame.data(), obs_frame.size(), sink))
      << decoder.error();
  ASSERT_TRUE(decoder.consume(batch2.data(), batch2.size(), sink))
      << decoder.error();
  ASSERT_EQ(sink.snapshots.size(), 1u);
  EXPECT_EQ(sink.snapshots[0].value_of("net.client.records_dropped"), 3.0);
  // The batch metric record resolves against the id the obs frame interned.
  ASSERT_EQ(sink.metrics.size(), 1u);
  EXPECT_EQ(sink.metrics[0].first, "net.client.records_dropped");
}

TEST(WireObs, UnknownObsPayloadVersionPoisonsTheDecoder) {
  std::vector<std::uint8_t> payload;
  payload.push_back(kObsPayloadVersion + 1);  // Future payload version.
  payload.push_back(0);                       // (would be send_wall_ns)
  const auto frame = WireEncoder::make_frame(FrameType::kMetricsSnapshot, payload);
  FrameDecoder decoder;
  ObsRecordingSink sink;
  EXPECT_FALSE(decoder.consume(frame.data(), frame.size(), sink));
  EXPECT_TRUE(decoder.failed());
  EXPECT_NE(decoder.error().find("version"), std::string::npos) << decoder.error();
}

// --- TraceMerger ---

TEST(TraceMerger, RecoversInjectedClockOffsetsUnderOneMillisecond) {
  obs::TraceMerger merger;
  const auto collector = merger.add_source("collector");
  merger.set_offset(collector, 0);
  const auto a0 = merger.add_source("agent0");
  const auto a1 = merger.add_source("agent1");

  // agent0's clock is 5 s behind collector time, agent1's is 2 s ahead.
  const std::int64_t off0 = 5'000'000'000;
  const std::int64_t off1 = -2'000'000'000;
  // Transit delays between 100 µs and 800 µs: the min-delay estimator must
  // land within the smallest transit (100 µs) of the injected offset.
  for (int i = 0; i < 8; ++i) {
    const std::int64_t send = 1'000'000'000 + i * 50'000'000;
    const std::int64_t transit = 100'000 + (7 - i) * 100'000;
    merger.observe_offset(a0, send, send + off0 + transit);
    merger.observe_offset(a1, send, send + off1 + transit);
  }
  ASSERT_TRUE(merger.has_offset(a0));
  ASSERT_TRUE(merger.has_offset(a1));
  EXPECT_NEAR(static_cast<double>(merger.offset_ns(a0)), static_cast<double>(off0),
              1e6);
  EXPECT_NEAR(static_cast<double>(merger.offset_ns(a1)), static_cast<double>(off1),
              1e6);

  merger.add_span(a0, "agent/run", 1, /*ts_ns=*/0, /*dur_ns=*/2'000'000, 1);
  merger.add_span(a1, "agent/run", 1, 7'000'000'000, 1'000'000, 2);
  merger.add_span(collector, "collector/drain", 0, 4'999'000'000, 500'000, 3);
  merger.set_dropped(a0, 4);
  EXPECT_EQ(merger.size(), 3u);

  std::ostringstream out;
  merger.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonReader(json).valid()) << json.substr(0, 200);
  EXPECT_NE(json.find("\"agent0\""), std::string::npos);
  EXPECT_NE(json.find("\"agent1\""), std::string::npos);
  EXPECT_NE(json.find("\"collector\""), std::string::npos);
  EXPECT_NE(json.find("clock_offset_ns"), std::string::npos);
  EXPECT_NE(json.find("spans_dropped"), std::string::npos);
  // agent0's span at local ts 0 rebases to offset + min-transit error:
  // (5'000'000'000 + 100'000) ns = 5000100 µs, exactly.
  EXPECT_NE(json.find("\"ts\":5000100.000"), std::string::npos) << json;
  // Spans are ordered by rebased collector time: the collector's span at
  // 4.9995 s precedes agent0's (5.0001 s) which precedes agent1's (5.0001+).
  const auto collector_pos = json.find("collector/drain");
  const auto a0_pos = json.find("\"ts\":5000100.000");
  ASSERT_NE(collector_pos, std::string::npos);
  ASSERT_NE(a0_pos, std::string::npos);
  EXPECT_LT(collector_pos, a0_pos);
}

// --- WatchdogActor ---

/// Collects raw payloads of one type from a topic.
template <typename T>
class PayloadCollector final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override {
    if (const T* value = envelope.payload.get<T>()) items.push_back(*value);
  }
  std::vector<T> items;
};

struct WatchdogHarness {
  explicit WatchdogHarness(WatchdogOptions options = {})
      : actors(actors::ActorSystem::Mode::kManual), bus(actors) {
    auto collector = std::make_unique<PayloadCollector<Alert>>();
    alerts = &collector->items;
    bus.subscribe("obs/alert", actors.spawn("alerts", std::move(collector)));
    auto actor = std::make_unique<WatchdogActor>(
        bus, [this] { return sample; }, options);
    watchdog = actor.get();
    ref = actors.spawn("watchdog", std::move(actor));
  }
  ~WatchdogHarness() { actors.shutdown(); }

  void tick(std::int64_t now_ns) {
    actors.tell(ref, actors::Payload(WatchdogTick{now_ns}));
    actors.drain();
  }

  WatchdogSample::Agent& agent(std::size_t index = 0) {
    while (sample.agents.size() <= index) {
      WatchdogSample::Agent fresh;
      fresh.label = "h" + std::to_string(sample.agents.size());
      fresh.connected = true;
      sample.agents.push_back(std::move(fresh));
    }
    return sample.agents[index];
  }

  actors::ActorSystem actors;
  actors::EventBus bus;
  WatchdogSample sample;
  std::vector<Alert>* alerts = nullptr;
  WatchdogActor* watchdog = nullptr;
  actors::ActorRef ref;
};

TEST(Watchdog, DropSpikeAlertsOnPerTickDelta) {
  WatchdogHarness h;
  h.agent().records_dropped = 0;
  h.tick(0);  // Baseline tick: no delta yet.
  EXPECT_TRUE(h.alerts->empty());

  h.agent().records_dropped = 500;  // Delta 500 > default threshold 100.
  h.tick(seconds_to_ns(2));
  ASSERT_EQ(h.alerts->size(), 1u);
  EXPECT_EQ((*h.alerts)[0].kind, Alert::Kind::kDropSpike);
  EXPECT_EQ((*h.alerts)[0].agent, "h0");
  EXPECT_DOUBLE_EQ((*h.alerts)[0].value, 500.0);
  EXPECT_DOUBLE_EQ((*h.alerts)[0].threshold, 100.0);
  EXPECT_EQ((*h.alerts)[0].wall_ns, seconds_to_ns(2));

  // A steady counter produces no further alerts.
  h.tick(seconds_to_ns(4));
  EXPECT_EQ(h.alerts->size(), 1u);
  EXPECT_EQ(h.watchdog->alerts_raised(), 1u);
}

TEST(Watchdog, CounterResetRebaselinesWithoutAlerting) {
  WatchdogHarness h;
  h.agent().records_dropped = 500;
  h.tick(0);  // Baseline at 500.
  // Reconnect reset the agent's counters: smaller value, no alert.
  h.agent().records_dropped = 0;
  h.tick(seconds_to_ns(2));
  EXPECT_TRUE(h.alerts->empty());
  // Deltas accumulate against the new baseline.
  h.agent().records_dropped = 200;
  h.tick(seconds_to_ns(4));
  ASSERT_EQ(h.alerts->size(), 1u);
  EXPECT_EQ((*h.alerts)[0].kind, Alert::Kind::kDropSpike);
  EXPECT_DOUBLE_EQ((*h.alerts)[0].value, 200.0);
}

TEST(Watchdog, ReconnectStormAlerts) {
  WatchdogHarness h;
  h.agent().reconnects = 1;
  h.tick(0);
  h.agent().reconnects = 6;  // Delta 5 > default threshold 3.
  h.tick(seconds_to_ns(2));
  ASSERT_EQ(h.alerts->size(), 1u);
  EXPECT_EQ((*h.alerts)[0].kind, Alert::Kind::kReconnectStorm);
  EXPECT_DOUBLE_EQ((*h.alerts)[0].value, 5.0);
}

TEST(Watchdog, StaleConnectedAgentAlerts) {
  WatchdogHarness h;
  h.agent().last_activity_wall_ns = seconds_to_ns(1);
  h.tick(seconds_to_ns(2));  // 1 s silent: under the 5 s default.
  EXPECT_TRUE(h.alerts->empty());
  h.tick(seconds_to_ns(8));  // 7 s silent: stale.
  ASSERT_EQ(h.alerts->size(), 1u);
  EXPECT_EQ((*h.alerts)[0].kind, Alert::Kind::kStale);
  EXPECT_EQ((*h.alerts)[0].agent, "h0");

  // A disconnected agent is never stale (it is already accounted dead).
  h.alerts->clear();
  h.agent().connected = false;
  h.tick(seconds_to_ns(20));
  EXPECT_TRUE(h.alerts->empty());
}

TEST(Watchdog, SelfWattsBudgetAlerts) {
  WatchdogOptions options;
  options.self_watts_budget = 2.0;
  WatchdogHarness h(options);
  h.sample.fleet_self_watts = 1.5;
  h.tick(0);
  EXPECT_TRUE(h.alerts->empty());
  h.sample.fleet_self_watts = 3.25;
  h.tick(seconds_to_ns(2));
  ASSERT_EQ(h.alerts->size(), 1u);
  EXPECT_EQ((*h.alerts)[0].kind, Alert::Kind::kSelfWattsBudget);
  EXPECT_TRUE((*h.alerts)[0].agent.empty());  // Fleet-wide alert.
  EXPECT_DOUBLE_EQ((*h.alerts)[0].value, 3.25);
}

TEST(Watchdog, RepeatsAreRateLimitedAndCounted) {
  obs::Observability obs;
  WatchdogOptions options;
  options.self_watts_budget = 1.0;
  options.min_alert_interval_ns = seconds_to_ns(1);
  options.obs = &obs;
  WatchdogHarness h(options);
  h.sample.fleet_self_watts = 5.0;  // Breaches on every tick.

  h.tick(0);  // Raised (even at now_ns == 0).
  h.tick(200'000'000);
  h.tick(400'000'000);  // Both inside the interval: suppressed.
  EXPECT_EQ(h.alerts->size(), 1u);
  EXPECT_EQ(h.watchdog->alerts_raised(), 1u);
  EXPECT_EQ(h.watchdog->alerts_suppressed(), 2u);

  h.tick(seconds_to_ns(2));  // Past the interval: raised again.
  EXPECT_EQ(h.alerts->size(), 2u);
  EXPECT_EQ(h.watchdog->alerts_raised(), 2u);

  const auto snapshot = obs.metrics.snapshot();
  EXPECT_EQ(snapshot.value_of("obs.watchdog.alerts"), 2.0);
  EXPECT_EQ(snapshot.value_of("obs.watchdog.suppressed"), 2.0);
}

// --- BusBridge remote-metric gauges ---

struct BridgeHarness {
  BridgeHarness() : actors(actors::ActorSystem::Mode::kManual), bus(actors) {}
  ~BridgeHarness() { actors.shutdown(); }
  actors::ActorSystem actors;
  actors::EventBus bus;
};

obs::MetricsSnapshot snapshot_with_counter(std::string_view name, double value) {
  obs::MetricsRegistry registry;
  registry.counter(std::string(name)).add(static_cast<std::uint64_t>(value));
  return registry.snapshot();
}

TEST(BusBridge, StaleAgentGaugesAreWithheldFromSnapshots) {
  BridgeHarness h;
  obs::Observability obs;
  BusBridgeOptions options;
  options.obs = &obs;
  options.metrics_stale_after_ns = seconds_to_ns(5);
  BusBridge bridge(h.bus, options);
  auto now = std::make_shared<std::int64_t>(seconds_to_ns(1));
  bridge.set_clock([now] { return *now; });

  bridge.on_connect(1);
  bridge.on_hello(1, "h0", kWireVersion);
  bridge.on_metric(1, "queue.depth", obs::MetricKind::kGauge, 9.0);
  EXPECT_EQ(obs.metrics.snapshot().value_of("remote.h0.queue.depth", -1.0), 9.0);

  // 4 s of silence: still fresh.
  *now = seconds_to_ns(5);
  EXPECT_EQ(obs.metrics.snapshot().value_of("remote.h0.queue.depth", -1.0), 9.0);

  // 7 s of silence: withheld, not served stale.
  *now = seconds_to_ns(8);
  EXPECT_EQ(obs.metrics.snapshot().find("remote.h0.queue.depth"), nullptr);

  // The agent speaking again revives its gauges.
  bridge.on_metric(1, "queue.depth", obs::MetricKind::kGauge, 11.0);
  EXPECT_EQ(obs.metrics.snapshot().value_of("remote.h0.queue.depth", -1.0), 11.0);
}

TEST(BusBridge, ReconnectStartsFromACleanMetricSlate) {
  BridgeHarness h;
  obs::Observability obs;
  BusBridgeOptions options;
  options.obs = &obs;
  BusBridge bridge(h.bus, options);

  bridge.on_connect(1);
  bridge.on_hello(1, "h0", kWireVersion);
  bridge.on_metric(1, "only.first.life", obs::MetricKind::kCounter, 5.0);
  bridge.on_metric(1, "queue.depth", obs::MetricKind::kGauge, 5.0);
  EXPECT_EQ(obs.metrics.snapshot().value_of("remote.h0.queue.depth", -1.0), 5.0);

  // Disconnect: every gauge of that agent vanishes with it.
  bridge.on_disconnect(1, "io");
  EXPECT_EQ(obs.metrics.snapshot().find("remote.h0.queue.depth"), nullptr);
  EXPECT_EQ(obs.metrics.snapshot().find("remote.h0.only.first.life"), nullptr);

  // Reconnect under a new conn id, same hello id: clean slate.
  bridge.on_connect(2);
  bridge.on_hello(2, "h0", kWireVersion);
  bridge.on_metric(2, "queue.depth", obs::MetricKind::kGauge, 1.0);
  const auto snapshot = obs.metrics.snapshot();
  EXPECT_EQ(snapshot.value_of("remote.h0.queue.depth", -1.0), 1.0);
  EXPECT_EQ(snapshot.find("remote.h0.only.first.life"), nullptr);
}

TEST(BusBridge, DuplicateHelloIdsKeepDistinctMetricNamespaces) {
  BridgeHarness h;
  obs::Observability obs;
  BusBridgeOptions options;
  options.obs = &obs;
  BusBridge bridge(h.bus, options);

  bridge.on_connect(1);
  bridge.on_hello(1, "h0", kWireVersion);
  bridge.on_connect(2);
  bridge.on_hello(2, "h0", kWireVersion);  // Same id while conn 1 is live.
  bridge.on_metric(1, "queue.depth", obs::MetricKind::kGauge, 1.0);
  bridge.on_metric(2, "queue.depth", obs::MetricKind::kGauge, 2.0);

  const auto snapshot = obs.metrics.snapshot();
  EXPECT_EQ(snapshot.value_of("remote.h0.queue.depth", -1.0), 1.0);
  EXPECT_EQ(snapshot.value_of("remote.h0#2.queue.depth", -1.0), 2.0);
  EXPECT_EQ(bridge.live_agents(), 2u);
}

TEST(BusBridge, SnapshotFramesFlattenHistogramsIntoGauges) {
  BridgeHarness h;
  obs::Observability obs;
  BusBridgeOptions options;
  options.obs = &obs;
  BusBridge bridge(h.bus, options);
  bridge.on_connect(1);
  bridge.on_hello(1, "h0", kWireVersion);

  obs::MetricsRegistry remote;
  remote.counter("work.count").add(7);
  obs::Histogram& hist = remote.histogram("tick.latency_ns");
  for (int i = 0; i < 10; ++i) hist.record(1000);
  bridge.on_metrics_snapshot(1, /*send=*/1, /*recv=*/2, remote.snapshot());

  const auto snapshot = obs.metrics.snapshot();
  EXPECT_EQ(snapshot.value_of("remote.h0.obs.work.count", -1.0), 7.0);
  EXPECT_EQ(snapshot.value_of("remote.h0.obs.tick.latency_ns.count", -1.0), 10.0);
  EXPECT_DOUBLE_EQ(snapshot.value_of("remote.h0.obs.tick.latency_ns.mean"), 1000.0);
  // p99 interpolates within the bucket, so just require it lands near.
  EXPECT_NEAR(snapshot.value_of("remote.h0.obs.tick.latency_ns.p99"), 1000.0, 50.0);
}

// --- CollectorStatus + StatusListener ---

struct NullSink : CollectorSink {};

TEST(CollectorStatus, TracksAgentsOffsetsAndSelfWatts) {
  NullSink next;
  obs::TraceMerger merger;
  auto now = std::make_shared<std::int64_t>(seconds_to_ns(10));
  CollectorStatusOptions options;
  options.merger = &merger;
  options.clock = [now] { return *now; };
  CollectorStatus status(next, options);

  status.on_connect(1);
  status.on_hello(1, "h0", kWireVersion);
  status.on_estimate(1, make_estimate(1, 30.0));

  obs::MetricsRegistry remote;
  remote.gauge("self.watts").set(0.25);
  remote.counter("net.client.records_dropped").add(12);
  remote.counter("net.client.reconnects").add(2);
  remote.counter("obs.trace.spans_dropped").add(3);
  // recv - send = 4 ms: becomes the offset estimate (single observation).
  status.on_metrics_snapshot(1, /*send=*/seconds_to_ns(9),
                             /*recv=*/seconds_to_ns(9) + 4'000'000,
                             remote.snapshot());
  status.on_spans(1, seconds_to_ns(9), seconds_to_ns(9) + 5'000'000,
                  {{"agent/run", 1, 100, 200, 1}});

  const auto agents = status.agents();
  ASSERT_EQ(agents.size(), 1u);
  EXPECT_EQ(agents[0].label, "h0");
  EXPECT_TRUE(agents[0].connected);
  EXPECT_EQ(agents[0].estimates, 1u);
  EXPECT_EQ(agents[0].snapshots, 1u);
  EXPECT_EQ(agents[0].spans, 1u);
  EXPECT_DOUBLE_EQ(agents[0].self_watts, 0.25);
  EXPECT_EQ(agents[0].records_dropped, 12u);
  EXPECT_EQ(agents[0].reconnects, 2u);
  EXPECT_TRUE(agents[0].has_offset);
  EXPECT_LE(agents[0].clock_offset_ns, 5'000'000);
  EXPECT_DOUBLE_EQ(status.fleet_self_watts(), 0.25);
  EXPECT_EQ(merger.size(), 1u);

  const WatchdogSample sample = status.watchdog_sample();
  ASSERT_EQ(sample.agents.size(), 1u);
  EXPECT_EQ(sample.agents[0].label, "h0");
  EXPECT_EQ(sample.agents[0].records_dropped, 12u);
  EXPECT_DOUBLE_EQ(sample.fleet_self_watts, 0.25);

  std::ostringstream text;
  status.render_text(text);
  EXPECT_NE(text.str().find("h0"), std::string::npos);
  std::ostringstream json;
  status.render_json(json);
  EXPECT_TRUE(JsonReader(json.str()).valid()) << json.str();
  EXPECT_NE(json.str().find("\"h0\""), std::string::npos);

  // Disconnect moves the agent to post-mortem retention.
  status.on_disconnect(1, "bye");
  const auto after = status.agents();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_FALSE(after[0].connected);
  EXPECT_EQ(after[0].disconnect_reason, "bye");
  EXPECT_DOUBLE_EQ(status.fleet_self_watts(), 0.0);
}

TEST(StatusListener, ServesTextAndJsonOverTcp) {
  NullSink next;
  CollectorStatus status(next, {});
  status.on_connect(1);
  status.on_hello(1, "agent-x", kWireVersion);

  StatusListener listener(0, [&status](std::ostream& out, bool json) {
    json ? status.render_json(out) : status.render_text(out);
  });
  ASSERT_TRUE(listener.listening()) << listener.error();

  auto query = [&listener](const std::string& command) {
    std::string error;
    Socket client = connect_tcp("127.0.0.1", listener.port(), &error);
    EXPECT_TRUE(client.valid()) << error;
    std::string response;
    bool sent = false;
    for (int i = 0; i < 400; ++i) {
      listener.poll_once(1);
      if (!sent) {
        const ssize_t n = ::send(client.fd(), command.data(), command.size(),
                                 MSG_NOSIGNAL);
        if (n == static_cast<ssize_t>(command.size())) sent = true;
        continue;
      }
      char buffer[4096];
      const ssize_t n = ::recv(client.fd(), buffer, sizeof buffer, MSG_DONTWAIT);
      if (n > 0) response.append(buffer, static_cast<std::size_t>(n));
      if (!response.empty() && response.back() == '\n' && n <= 0) break;
    }
    return response;
  };

  const std::string text = query("status\n");
  EXPECT_NE(text.find("agent-x"), std::string::npos) << text;

  const std::string json = query("json\n");
  ASSERT_FALSE(json.empty());
  EXPECT_TRUE(JsonReader(json).valid()) << json;
  EXPECT_NE(json.find("\"agent-x\""), std::string::npos);
}

// --- End to end over loopback ---

TelemetryClientOptions fast_client(std::uint16_t port) {
  TelemetryClientOptions options;
  options.port = port;
  options.agent_id = "h7";
  options.flush_interval_ms = 1;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 8;
  return options;
}

TEST(Loopback, ObsPlaneFlowsEndToEnd) {
  actors::ActorSystem system(actors::ActorSystem::Mode::kManual);
  actors::EventBus bus(system);
  obs::Observability collector_obs;
  BusBridgeOptions bridge_options;
  bridge_options.obs = &collector_obs;
  BusBridge bridge(bus, bridge_options);
  obs::TraceMerger merger;
  CollectorStatusOptions status_options;
  status_options.merger = &merger;
  CollectorStatus status(bridge, status_options);
  CollectorServer server({}, status);
  ASSERT_TRUE(server.listening()) << server.error();
  status.attach_server(&server);

  obs::Observability agent_obs;
  TelemetryClientOptions client_options = fast_client(server.port());
  client_options.obs = &agent_obs;
  client_options.obs_interval_ms = 1;
  TelemetryClient client(client_options);

  for (int i = 0; i < 2000 && !client.connected(); ++i) {
    client.poll_once(1);
    server.poll_once(1);
  }
  ASSERT_TRUE(client.connected());

  agent_obs.metrics.counter("agent.work").add(42);
  const auto step = agent_obs.trace.intern("agent/step");
  agent_obs.trace.complete(step, obs::wall_now_ns(), 1'000'000, 1);
  client.report(make_estimate(seconds_to_ns(1), 31.0));

  for (int i = 0; i < 2000; ++i) {
    client.poll_once(1);
    server.poll_once(1);
    system.drain();
    const auto stats = server.stats();
    if (stats.snapshots_decoded >= 2 && stats.spans_decoded >= 1) break;
  }
  const auto server_stats = server.stats();
  ASSERT_GE(server_stats.snapshots_decoded, 2u);
  ASSERT_GE(server_stats.spans_decoded, 1u);
  EXPECT_GE(client.stats().obs_frames_sent, 2u);

  // The status ledger saw the agent's obs plane.
  const auto agents = status.agents();
  ASSERT_EQ(agents.size(), 1u);
  EXPECT_EQ(agents[0].label, "h7");
  EXPECT_GE(agents[0].snapshots, 2u);
  EXPECT_GE(agents[0].spans, 1u);
  ASSERT_TRUE(agents[0].has_offset);
  // Same process, same clock: the offset is pure transit, tiny and >= 0.
  EXPECT_GE(agents[0].clock_offset_ns, 0);
  EXPECT_LT(agents[0].clock_offset_ns, seconds_to_ns(1));

  // Remote metrics re-exported at the collector; spans in the merger.
  EXPECT_EQ(collector_obs.metrics.snapshot().value_of("remote.h7.obs.agent.work",
                                                      -1.0),
            42.0);
  EXPECT_GE(merger.size(), 1u);

  // The estimate still flows through the bridge exactly as in PR 5.
  EXPECT_GE(server_stats.records_decoded, 1u);

  client.stop();
  for (int i = 0; i < 200 && server.connection_count() > 0; ++i) {
    server.poll_once(1);
  }
  // The agent's gauges vanished with it.
  EXPECT_EQ(collector_obs.metrics.snapshot().find("remote.h7.obs.agent.work"),
            nullptr);
  const auto after = status.agents();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_FALSE(after[0].connected);
  EXPECT_EQ(after[0].disconnect_reason, "bye");
}

TEST(Loopback, ObsCadenceOffSendsNoObsFrames) {
  NullSink sink;
  CollectorServer server({}, sink);
  ASSERT_TRUE(server.listening()) << server.error();

  obs::Observability agent_obs;
  TelemetryClientOptions options = fast_client(server.port());
  options.obs = &agent_obs;  // obs wired, but obs_interval_ms stays 0.
  TelemetryClient client(options);
  for (int i = 0; i < 2000 && !client.connected(); ++i) {
    client.poll_once(1);
    server.poll_once(1);
  }
  ASSERT_TRUE(client.connected());

  agent_obs.trace.complete(agent_obs.trace.intern("agent/step"),
                           obs::wall_now_ns(), 1000, 1);
  client.report(make_estimate(seconds_to_ns(1), 31.0));
  ASSERT_TRUE(client.flush(2000));
  for (int i = 0; i < 20; ++i) {
    client.poll_once(1);
    server.poll_once(1);
  }
  client.stop();
  for (int i = 0; i < 200 && server.connection_count() > 0; ++i) {
    server.poll_once(1);
  }

  EXPECT_EQ(client.stats().obs_frames_sent, 0u);
  const auto stats = server.stats();
  EXPECT_EQ(stats.snapshots_decoded, 0u);
  EXPECT_EQ(stats.spans_decoded, 0u);
  EXPECT_GE(stats.records_decoded, 1u);
  EXPECT_EQ(stats.decode_errors, 0u);
  // Every byte the client sent was a plain PR 5 frame.
  EXPECT_EQ(client.stats().bytes_sent, stats.bytes_received);
}

}  // namespace
}  // namespace powerapi::net
