// Tests for the telemetry wire: frame encode/decode (including torn and
// malformed input), the TelemetryClient/CollectorServer loopback pair in
// deterministic manual-poll mode, fault injection (garbage connections,
// server restarts, mid-stream disconnects, slow readers), and the BusBridge
// republishing decoded telemetry onto a local event bus.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "net/bus_bridge.h"
#include "net/collector_server.h"
#include "net/socket.h"
#include "net/telemetry_client.h"
#include "net/wire.h"
#include "obs/observability.h"

namespace powerapi::net {
namespace {

using util::seconds_to_ns;

api::PowerEstimate make_estimate(std::int64_t second, double watts,
                                 std::string formula = "powerapi-hpc",
                                 std::int64_t pid = api::kMachinePid) {
  api::PowerEstimate e;
  e.timestamp = seconds_to_ns(second);
  e.pid = pid;
  e.formula = std::move(formula);
  e.watts = watts;
  e.model_version = 3;
  return e;
}

api::AggregatedPower make_aggregated(std::int64_t second, double watts,
                                     std::string group = "(fleet)") {
  api::AggregatedPower row;
  row.timestamp = seconds_to_ns(second);
  row.pid = api::kMachinePid;
  row.group = std::move(group);
  row.formula = "powerapi-hpc";
  row.watts = watts;
  return row;
}

/// WireSink recording everything it decodes.
struct RecordingSink : WireSink {
  void on_hello(std::string_view agent_id, std::uint8_t version) override {
    hellos.emplace_back(agent_id, version);
  }
  void on_estimate(const api::PowerEstimate& estimate) override {
    estimates.push_back(estimate);
  }
  void on_aggregated(const api::AggregatedPower& row) override {
    aggregated.push_back(row);
  }
  void on_metric(std::string_view name, obs::MetricKind kind, double value) override {
    metrics.push_back({std::string(name), kind, value});
  }
  void on_bye() override { ++byes; }

  struct Metric {
    std::string name;
    obs::MetricKind kind;
    double value;
  };
  std::vector<std::pair<std::string, std::uint8_t>> hellos;
  std::vector<api::PowerEstimate> estimates;
  std::vector<api::AggregatedPower> aggregated;
  std::vector<Metric> metrics;
  int byes = 0;
};

// --- Wire format ---

TEST(Wire, BatchRoundTripsAllRecordTypes) {
  WireEncoder encoder;
  const auto e1 = make_estimate(1, 31.48);
  const auto e2 = make_estimate(2, 0.1 + 0.2, "cpu-load", 42);  // Inexact sum:
  // only a bit-exact f64 encoding round-trips it to EXPECT_DOUBLE_EQ.
  const auto agg = make_aggregated(2, 123.456);
  encoder.add(e1);
  encoder.add(e2);
  encoder.add(agg);
  encoder.add_metric("actors.messages", obs::MetricKind::kCounter, 9001.0);
  EXPECT_EQ(encoder.pending_records(), 4u);

  FrameDecoder decoder;
  RecordingSink sink;
  const auto frame = encoder.take_batch_frame();
  EXPECT_EQ(encoder.pending_records(), 0u);
  ASSERT_TRUE(decoder.consume(frame.data(), frame.size(), sink));
  EXPECT_EQ(decoder.frames_decoded(), 1u);
  EXPECT_EQ(decoder.records_decoded(), 4u);

  ASSERT_EQ(sink.estimates.size(), 2u);
  EXPECT_EQ(sink.estimates[0].timestamp, e1.timestamp);
  EXPECT_EQ(sink.estimates[0].pid, api::kMachinePid);
  EXPECT_EQ(sink.estimates[0].formula, "powerapi-hpc");
  EXPECT_DOUBLE_EQ(sink.estimates[0].watts, 31.48);
  EXPECT_EQ(sink.estimates[0].model_version, 3u);
  EXPECT_EQ(sink.estimates[1].timestamp, e2.timestamp);
  EXPECT_EQ(sink.estimates[1].pid, 42);
  EXPECT_EQ(sink.estimates[1].formula, "cpu-load");
  EXPECT_DOUBLE_EQ(sink.estimates[1].watts, 0.1 + 0.2);

  ASSERT_EQ(sink.aggregated.size(), 1u);
  EXPECT_EQ(sink.aggregated[0].timestamp, agg.timestamp);
  EXPECT_EQ(sink.aggregated[0].group, "(fleet)");
  EXPECT_EQ(sink.aggregated[0].formula, "powerapi-hpc");
  EXPECT_DOUBLE_EQ(sink.aggregated[0].watts, 123.456);

  ASSERT_EQ(sink.metrics.size(), 1u);
  EXPECT_EQ(sink.metrics[0].name, "actors.messages");
  EXPECT_EQ(sink.metrics[0].kind, obs::MetricKind::kCounter);
  EXPECT_DOUBLE_EQ(sink.metrics[0].value, 9001.0);
}

TEST(Wire, DictionaryInterningShrinksRepeatBatches) {
  WireEncoder encoder;
  encoder.add(make_estimate(1, 30.0));
  const auto first = encoder.take_batch_frame();
  encoder.add(make_estimate(2, 31.0));  // Same formula: id only, no dict entry.
  const auto second = encoder.take_batch_frame();
  EXPECT_LT(second.size(), first.size());

  // Both decode against one connection's stream state.
  FrameDecoder decoder;
  RecordingSink sink;
  ASSERT_TRUE(decoder.consume(first.data(), first.size(), sink));
  ASSERT_TRUE(decoder.consume(second.data(), second.size(), sink));
  ASSERT_EQ(sink.estimates.size(), 2u);
  EXPECT_EQ(sink.estimates[1].formula, "powerapi-hpc");
  EXPECT_EQ(sink.estimates[1].timestamp, seconds_to_ns(2));
}

TEST(Wire, TimestampDeltasSurviveNonMonotonicStreams) {
  // Aggregators can emit slightly out-of-order timestamps across formulas;
  // zigzag deltas must round-trip a regression, not corrupt the base.
  WireEncoder encoder;
  encoder.add(make_estimate(5, 1.0));
  encoder.add(make_estimate(3, 2.0));  // Negative delta.
  encoder.add(make_estimate(8, 3.0));
  const auto frame = encoder.take_batch_frame();
  FrameDecoder decoder;
  RecordingSink sink;
  ASSERT_TRUE(decoder.consume(frame.data(), frame.size(), sink));
  ASSERT_EQ(sink.estimates.size(), 3u);
  EXPECT_EQ(sink.estimates[0].timestamp, seconds_to_ns(5));
  EXPECT_EQ(sink.estimates[1].timestamp, seconds_to_ns(3));
  EXPECT_EQ(sink.estimates[2].timestamp, seconds_to_ns(8));
}

TEST(Wire, HelloAndByeFrames) {
  const auto hello = WireEncoder::hello_frame("agent-7");
  const auto bye = WireEncoder::bye_frame();
  FrameDecoder decoder;
  RecordingSink sink;
  ASSERT_TRUE(decoder.consume(hello.data(), hello.size(), sink));
  ASSERT_TRUE(decoder.consume(bye.data(), bye.size(), sink));
  ASSERT_EQ(sink.hellos.size(), 1u);
  EXPECT_EQ(sink.hellos[0].first, "agent-7");
  EXPECT_EQ(sink.hellos[0].second, kWireVersion);
  EXPECT_EQ(sink.byes, 1);
}

TEST(Wire, TornFramesDecodeByteByByte) {
  WireEncoder encoder;
  std::vector<std::uint8_t> stream = WireEncoder::hello_frame("torn");
  encoder.add(make_estimate(1, 31.48));
  encoder.add(make_aggregated(1, 99.0));
  const auto batch = encoder.take_batch_frame();
  stream.insert(stream.end(), batch.begin(), batch.end());

  FrameDecoder decoder;
  RecordingSink sink;
  for (const std::uint8_t byte : stream) {
    ASSERT_TRUE(decoder.consume(&byte, 1, sink));
  }
  EXPECT_EQ(decoder.frames_decoded(), 2u);
  ASSERT_EQ(sink.hellos.size(), 1u);
  ASSERT_EQ(sink.estimates.size(), 1u);
  ASSERT_EQ(sink.aggregated.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.estimates[0].watts, 31.48);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(Wire, MalformedFramesPoisonTheDecoder) {
  WireEncoder encoder;
  encoder.add(make_estimate(1, 10.0));
  const auto good = encoder.take_batch_frame();

  struct Case {
    const char* name;
    std::function<std::vector<std::uint8_t>(std::vector<std::uint8_t>)> corrupt;
    const char* expect_error;
  };
  const Case cases[] = {
      {"bad magic",
       [](auto f) { f[0] ^= 0xFF; return f; }, "bad frame magic"},
      {"bad version",
       [](auto f) { f[4] = 99; return f; }, "unsupported wire version"},
      {"corrupt crc",
       [](auto f) { f[10] ^= 0x01; return f; }, "crc32c mismatch"},
      {"flipped payload byte",
       [](auto f) { f.back() ^= 0x80; return f; }, "crc32c mismatch"},
      {"hostile length",
       [](auto f) {
         f[6] = 0xFF; f[7] = 0xFF; f[8] = 0xFF; f[9] = 0x7F;
         return f;
       },
       "exceeds limit"},
  };
  for (const Case& c : cases) {
    FrameDecoder decoder;
    RecordingSink sink;
    const auto bad = c.corrupt(good);
    EXPECT_FALSE(decoder.consume(bad.data(), bad.size(), sink)) << c.name;
    EXPECT_TRUE(decoder.failed()) << c.name;
    EXPECT_NE(decoder.error().find(c.expect_error), std::string::npos)
        << c.name << ": " << decoder.error();
    EXPECT_TRUE(sink.estimates.empty()) << c.name;
    // Poisoned: even good input is rejected until reset().
    EXPECT_FALSE(decoder.consume(good.data(), good.size(), sink)) << c.name;
    decoder.reset();
    EXPECT_TRUE(decoder.consume(good.data(), good.size(), sink)) << c.name;
    EXPECT_EQ(sink.estimates.size(), 1u) << c.name;
  }
}

TEST(Wire, TruncatedAndOutOfSequenceRecordsRejected) {
  // A batch whose payload ends mid-record: CRC valid (recomputed), record
  // truncated.
  WireEncoder encoder;
  encoder.add(make_estimate(1, 10.0));
  const auto frame = encoder.take_batch_frame();
  const std::size_t payload_len = frame.size() - kFrameHeaderBytes;
  std::vector<std::uint8_t> payload(frame.begin() + kFrameHeaderBytes, frame.end());
  payload.resize(payload_len - 4);  // Chop the record's tail.
  const auto truncated = WireEncoder::make_frame(FrameType::kBatch, payload);
  {
    FrameDecoder decoder;
    RecordingSink sink;
    EXPECT_FALSE(decoder.consume(truncated.data(), truncated.size(), sink));
    EXPECT_NE(decoder.error().find("truncated"), std::string::npos)
        << decoder.error();
  }
  {
    // A dict record whose id skips ahead: ids must be dense in stream order.
    std::vector<std::uint8_t> rogue;
    rogue.push_back(1);  // kDict
    rogue.push_back(5);  // id 5 on a fresh connection (expects 0).
    rogue.push_back(1);  // strlen
    rogue.push_back('x');
    const auto bad = WireEncoder::make_frame(FrameType::kBatch, rogue);
    FrameDecoder decoder;
    RecordingSink sink;
    EXPECT_FALSE(decoder.consume(bad.data(), bad.size(), sink));
    EXPECT_NE(decoder.error().find("out of sequence"), std::string::npos)
        << decoder.error();
  }
  {
    // An estimate referencing an undefined dictionary id.
    std::vector<std::uint8_t> rogue;
    rogue.push_back(2);  // kEstimate
    rogue.push_back(0);  // ts delta 0
    rogue.push_back(0);  // pid 0
    rogue.push_back(9);  // formula id 9: never defined.
    for (int i = 0; i < 8; ++i) rogue.push_back(0);  // watts
    rogue.push_back(0);  // model version
    const auto bad = WireEncoder::make_frame(FrameType::kBatch, rogue);
    FrameDecoder decoder;
    RecordingSink sink;
    EXPECT_FALSE(decoder.consume(bad.data(), bad.size(), sink));
    EXPECT_NE(decoder.error().find("undefined"), std::string::npos)
        << decoder.error();
  }
}

// --- Client/server loopback (deterministic manual polling) ---

/// A CollectorSink recording per-connection events.
struct RecordingCollector : CollectorSink {
  void on_connect(ConnId conn) override { connects.push_back(conn); }
  void on_hello(ConnId conn, std::string_view agent_id, std::uint8_t) override {
    hellos.emplace_back(conn, std::string(agent_id));
  }
  void on_estimate(ConnId, const api::PowerEstimate& estimate) override {
    estimates.push_back(estimate);
  }
  void on_aggregated(ConnId, const api::AggregatedPower& row) override {
    aggregated.push_back(row);
  }
  void on_metric(ConnId, std::string_view name, obs::MetricKind,
                 double value) override {
    metrics.emplace_back(std::string(name), value);
  }
  void on_disconnect(ConnId conn, std::string_view reason) override {
    disconnects.emplace_back(conn, std::string(reason));
  }

  std::vector<ConnId> connects;
  std::vector<std::pair<ConnId, std::string>> hellos;
  std::vector<api::PowerEstimate> estimates;
  std::vector<api::AggregatedPower> aggregated;
  std::vector<std::pair<std::string, double>> metrics;
  std::vector<std::pair<ConnId, std::string>> disconnects;
};

void pump(TelemetryClient& client, CollectorServer& server, int iterations) {
  for (int i = 0; i < iterations; ++i) {
    client.poll_once(1);
    server.poll_once(1);
  }
}

bool pump_until_connected(TelemetryClient& client, CollectorServer& server,
                          int max_iterations = 2000) {
  for (int i = 0; i < max_iterations && !client.connected(); ++i) {
    client.poll_once(1);
    server.poll_once(1);
  }
  return client.connected();
}

TelemetryClientOptions fast_client(std::uint16_t port) {
  TelemetryClientOptions options;
  options.port = port;
  options.agent_id = "test-agent";
  options.flush_interval_ms = 1;
  options.backoff_initial_ms = 1;
  options.backoff_max_ms = 8;
  return options;
}

TEST(Loopback, RecordsFlowEndToEndBitExact) {
  RecordingCollector sink;
  CollectorServer server({}, sink);
  ASSERT_TRUE(server.listening()) << server.error();

  TelemetryClient client(fast_client(server.port()));
  ASSERT_TRUE(pump_until_connected(client, server));

  for (int i = 1; i <= 5; ++i) {
    client.report(make_estimate(i, 31.48 + 0.001 * i));
  }
  client.report(make_aggregated(3, 260.125));
  client.report_metric("actors.messages", obs::MetricKind::kCounter, 12345.0);
  ASSERT_TRUE(client.flush(2000));
  pump(client, server, 20);

  ASSERT_EQ(sink.hellos.size(), 1u);
  EXPECT_EQ(sink.hellos[0].second, "test-agent");
  ASSERT_EQ(sink.estimates.size(), 5u);
  for (int i = 1; i <= 5; ++i) {
    EXPECT_EQ(sink.estimates[i - 1].timestamp, seconds_to_ns(i));
    EXPECT_DOUBLE_EQ(sink.estimates[i - 1].watts, 31.48 + 0.001 * i);
  }
  ASSERT_EQ(sink.aggregated.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.aggregated[0].watts, 260.125);
  ASSERT_EQ(sink.metrics.size(), 1u);
  EXPECT_EQ(sink.metrics[0].first, "actors.messages");

  const auto client_stats = client.stats();
  const auto server_stats = server.stats();
  EXPECT_EQ(client_stats.records_enqueued, 7u);
  EXPECT_EQ(client_stats.records_sent, 7u);
  EXPECT_EQ(client_stats.records_dropped, 0u);
  EXPECT_EQ(server_stats.records_decoded, 7u);
  EXPECT_EQ(server_stats.decode_errors, 0u);
  EXPECT_EQ(client_stats.bytes_sent, server_stats.bytes_received);

  client.stop();
  for (int i = 0; i < 50 && server.connection_count() > 0; ++i) {
    server.poll_once(1);
  }
  ASSERT_EQ(sink.disconnects.size(), 1u);
  EXPECT_EQ(sink.disconnects[0].second, "bye");  // Orderly shutdown.
  EXPECT_EQ(server.connection_count(), 0u);
}

TEST(Loopback, GarbageConnectionIsIsolated) {
  RecordingCollector sink;
  CollectorServer server({}, sink);
  ASSERT_TRUE(server.listening()) << server.error();

  TelemetryClient client(fast_client(server.port()));
  ASSERT_TRUE(pump_until_connected(client, server));

  // A rogue peer sends garbage on a raw socket.
  std::string error;
  Socket rogue = connect_tcp("127.0.0.1", server.port(), &error);
  ASSERT_TRUE(rogue.valid()) << error;
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  for (int i = 0; i < 100 && server.connection_count() < 2; ++i) {
    server.poll_once(1);
  }
  ASSERT_EQ(::send(rogue.fd(), garbage, sizeof(garbage) - 1, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(garbage) - 1));
  for (int i = 0; i < 100 && server.stats().decode_errors == 0; ++i) {
    server.poll_once(1);
  }

  // The rogue connection died; the well-behaved client still works.
  EXPECT_EQ(server.stats().decode_errors, 1u);
  ASSERT_EQ(sink.disconnects.size(), 1u);
  EXPECT_NE(sink.disconnects[0].second.find("bad frame magic"), std::string::npos);
  EXPECT_EQ(server.connection_count(), 1u);

  client.report(make_estimate(1, 30.0));
  ASSERT_TRUE(client.flush(2000));
  pump(client, server, 20);
  ASSERT_EQ(sink.estimates.size(), 1u);
  EXPECT_DOUBLE_EQ(sink.estimates[0].watts, 30.0);
  client.stop();
}

TEST(Loopback, ReconnectAfterServerRestartReemitsDictionary) {
  RecordingCollector sink;
  auto server = std::make_unique<CollectorServer>(CollectorServerOptions{}, sink);
  ASSERT_TRUE(server->listening()) << server->error();
  const std::uint16_t port = server->port();

  obs::Observability obs;
  TelemetryClientOptions options = fast_client(port);
  options.obs = &obs;
  TelemetryClient client(options);
  ASSERT_TRUE(pump_until_connected(client, *server));
  client.report(make_estimate(1, 10.0));
  ASSERT_TRUE(client.flush(2000));
  server->poll_once(1);
  ASSERT_EQ(sink.estimates.size(), 1u);
  EXPECT_EQ(client.stats().connects, 1u);

  // The collector goes away: the client must notice and enter backoff.
  server.reset();
  for (int i = 0; i < 200 && client.connected(); ++i) client.poll_once(1);
  EXPECT_FALSE(client.connected());

  // It comes back on the same port; the client reconnects and the SAME
  // formula string decodes on the fresh connection — the dictionary was
  // re-emitted, not assumed.
  CollectorServerOptions restart;
  restart.port = port;
  CollectorServer revived(restart, sink);
  ASSERT_TRUE(revived.listening()) << revived.error();
  ASSERT_TRUE(pump_until_connected(client, revived, 5000));
  client.report(make_estimate(2, 20.0));
  ASSERT_TRUE(client.flush(2000));
  pump(client, revived, 20);

  ASSERT_EQ(sink.estimates.size(), 2u);
  EXPECT_EQ(sink.estimates[1].formula, "powerapi-hpc");
  EXPECT_DOUBLE_EQ(sink.estimates[1].watts, 20.0);
  EXPECT_EQ(sink.hellos.size(), 2u);  // One hello per connection.
  const auto stats = client.stats();
  EXPECT_EQ(stats.connects, 2u);
  EXPECT_GE(stats.reconnects, 1u);
  // The obs registry carries the same story.
  const auto snap = obs.metrics.snapshot();
  const auto* reconnects = snap.find("net.client.reconnects");
  ASSERT_NE(reconnects, nullptr);
  EXPECT_GE(reconnects->value, 1.0);
  client.stop();
}

TEST(Loopback, QueueOverflowDropsOldestAndAccountsIt) {
  RecordingCollector sink;
  CollectorServer server({}, sink);
  ASSERT_TRUE(server.listening()) << server.error();

  obs::Observability obs;
  TelemetryClientOptions options = fast_client(server.port());
  options.queue_max_records = 4;
  options.obs = &obs;
  TelemetryClient client(options);

  // No pumping yet: the queue must absorb — and bound — the backlog.
  for (int i = 1; i <= 10; ++i) client.report(make_estimate(i, 1.0 * i));
  EXPECT_EQ(client.stats().records_enqueued, 10u);
  EXPECT_EQ(client.stats().records_dropped, 6u);

  ASSERT_TRUE(pump_until_connected(client, server));
  ASSERT_TRUE(client.flush(2000));
  pump(client, server, 20);

  // Drop-oldest: the four NEWEST records survived.
  ASSERT_EQ(sink.estimates.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(sink.estimates[i].timestamp, seconds_to_ns(7 + i));
  }
  const auto stats = client.stats();
  EXPECT_EQ(stats.records_sent, 4u);
  EXPECT_EQ(stats.records_enqueued, stats.records_sent + stats.records_dropped);
  const auto snapshot = obs.metrics.snapshot();
  const auto* dropped = snapshot.find("net.client.records_dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_DOUBLE_EQ(dropped->value, 6.0);
  client.stop();
}

TEST(Loopback, SlowReaderEngagesBackpressureWithoutLosingAccounting) {
  RecordingCollector sink;
  CollectorServerOptions server_options;
  server_options.max_read_bytes_per_poll = 64;  // Drip-feed reader.
  CollectorServer server(server_options, sink);
  ASSERT_TRUE(server.listening()) << server.error();

  TelemetryClientOptions options = fast_client(server.port());
  options.queue_max_records = 32;
  options.max_unsent_bytes = 512;  // Encoding cap engages quickly.
  options.batch_max_records = 4;
  TelemetryClient client(options);
  ASSERT_TRUE(pump_until_connected(client, server));

  for (int i = 1; i <= 500; ++i) {
    client.report(make_estimate(i, 0.5 * i));
    client.poll_once(0);
    server.poll_once(0);
  }
  // Let both sides fully drain.
  ASSERT_TRUE(client.flush(10000));
  for (int i = 0; i < 2000 && server.stats().records_decoded <
                                  client.stats().records_sent; ++i) {
    server.poll_once(1);
  }

  const auto stats = client.stats();
  const auto server_stats = server.stats();
  // Every record is accounted: sent or dropped, nothing vanished.
  EXPECT_EQ(stats.records_enqueued, 500u);
  EXPECT_EQ(stats.records_sent + stats.records_dropped, 500u);
  EXPECT_EQ(server_stats.records_decoded, stats.records_sent);
  EXPECT_EQ(server_stats.decode_errors, 0u);
  // The slow reader actually bit: some records were dropped.
  EXPECT_GT(stats.records_sent, 0u);
  EXPECT_EQ(sink.estimates.size(), stats.records_sent);
  client.stop();
}

TEST(Loopback, MidStreamDisconnectCountsInflightAsDropped) {
  RecordingCollector sink;
  auto server = std::make_unique<CollectorServer>(CollectorServerOptions{}, sink);
  ASSERT_TRUE(server->listening()) << server->error();

  TelemetryClient client(fast_client(server->port()));
  ASSERT_TRUE(pump_until_connected(client, *server));
  client.report(make_estimate(1, 1.0));
  ASSERT_TRUE(client.flush(2000));

  // The collector dies with records still being produced.
  server.reset();
  for (int i = 2; i <= 20; ++i) {
    client.report(make_estimate(i, 1.0 * i));
    client.poll_once(1);
  }
  for (int i = 0; i < 500 && client.connected(); ++i) client.poll_once(1);
  client.stop(/*flush_timeout_ms=*/50);

  const auto stats = client.stats();
  EXPECT_EQ(stats.records_enqueued, 20u);
  // Conservation law: everything enqueued either reached the socket or was
  // counted as dropped — a lost collector never silently eats records.
  EXPECT_EQ(stats.records_sent + stats.records_dropped, 20u);
  EXPECT_GE(stats.records_dropped, 1u);
}

TEST(Loopback, RefusesConnectionsBeyondTheLimit) {
  RecordingCollector sink;
  CollectorServerOptions server_options;
  server_options.max_connections = 1;
  CollectorServer server(server_options, sink);
  ASSERT_TRUE(server.listening()) << server.error();

  TelemetryClient first(fast_client(server.port()));
  ASSERT_TRUE(pump_until_connected(first, server));
  EXPECT_EQ(server.connection_count(), 1u);

  // A second client connects at TCP level but is refused by the server; it
  // must never displace the first.
  TelemetryClient second(fast_client(server.port()));
  for (int i = 0; i < 100; ++i) {
    second.poll_once(1);
    server.poll_once(1);
  }
  EXPECT_EQ(server.connection_count(), 1u);
  EXPECT_EQ(server.stats().connections_accepted, 1u);

  // The first client still delivers.
  first.report(make_estimate(1, 5.0));
  ASSERT_TRUE(first.flush(2000));
  pump(first, server, 20);
  ASSERT_EQ(sink.estimates.size(), 1u);
  first.stop();
  second.stop();
}

// --- Threaded event loops (the start() paths) ---

TEST(Loopback, ThreadedLoopsSurviveConcurrentProducers) {
  RecordingCollector sink;
  CollectorServer server({}, sink);
  ASSERT_TRUE(server.listening()) << server.error();
  server.start();

  TelemetryClient client(fast_client(server.port()));
  client.start();

  // Four producer threads hammer report() while both background loops run:
  // the report path must stay lock-cheap and the accounting invariant
  // (enqueued == sent + dropped) must survive real concurrency.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&client, t] {
      for (int i = 0; i < kPerThread; ++i) {
        client.report(make_estimate(t * kPerThread + i, 1.0 + t));
      }
    });
  }
  for (auto& thread : producers) thread.join();

  EXPECT_TRUE(client.flush(5000));
  client.stop();

  const auto stats = client.stats();
  EXPECT_EQ(stats.records_enqueued, static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(stats.records_enqueued, stats.records_sent + stats.records_dropped);

  // Let the server thread drain the socket, then join it before touching
  // the sink (its callbacks run on the server thread).
  for (int spin = 0; spin < 1000; ++spin) {
    if (server.stats().records_decoded >= stats.records_sent) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  server.stop();
  EXPECT_EQ(server.stats().records_decoded, stats.records_sent);
  EXPECT_EQ(sink.estimates.size(), stats.records_sent);
  EXPECT_EQ(server.stats().decode_errors, 0u);
}

// --- BusBridge ---

/// Collects raw payloads of one type from a topic.
template <typename T>
class Collector final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override {
    if (const T* value = envelope.payload.get<T>()) items.push_back(*value);
  }
  std::vector<T> items;
};

struct BridgeHarness {
  BridgeHarness() : actors(actors::ActorSystem::Mode::kManual), bus(actors) {}
  ~BridgeHarness() { actors.shutdown(); }

  template <typename T>
  Collector<T>& collect(const std::string& topic) {
    auto owned = std::make_unique<Collector<T>>();
    Collector<T>& ref = *owned;
    bus.subscribe(topic, actors.spawn("collector", std::move(owned)));
    return ref;
  }

  actors::ActorSystem actors;
  actors::EventBus bus;
};

TEST(BusBridge, RepublishesUnderPerAgentAndMergedTopics) {
  BridgeHarness h;
  obs::Observability obs;
  BusBridgeOptions options;
  options.obs = &obs;
  BusBridge bridge(h.bus, options);
  auto& merged = h.collect<api::PowerEstimate>("remote/power:estimation");
  auto& per_agent = h.collect<api::PowerEstimate>("remote/h0/power:estimation");
  auto& merged_agg = h.collect<api::AggregatedPower>("remote/power:aggregated");

  bridge.on_connect(1);
  bridge.on_hello(1, "h0", kWireVersion);
  EXPECT_EQ(bridge.live_agents(), 1u);
  bridge.on_estimate(1, make_estimate(1, 33.0));
  bridge.on_aggregated(1, make_aggregated(1, 66.0));
  bridge.on_metric(1, "actors.messages", obs::MetricKind::kCounter, 17.0);
  h.actors.drain();

  ASSERT_EQ(merged.items.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.items[0].watts, 33.0);
  ASSERT_EQ(per_agent.items.size(), 1u);
  EXPECT_DOUBLE_EQ(per_agent.items[0].watts, 33.0);
  ASSERT_EQ(merged_agg.items.size(), 1u);
  EXPECT_DOUBLE_EQ(merged_agg.items[0].watts, 66.0);

  // Remote metrics land as re-exported gauges under the agent's name.
  const auto snapshot = obs.metrics.snapshot();
  const auto* gauge = snapshot.find("remote.h0.actors.messages");
  ASSERT_NE(gauge, nullptr);
  EXPECT_DOUBLE_EQ(gauge->value, 17.0);

  bridge.on_disconnect(1, "bye");
  EXPECT_EQ(bridge.live_agents(), 0u);
}

TEST(BusBridge, PreHelloRecordsFallBackToConnLabel) {
  BridgeHarness h;
  BusBridge bridge(h.bus);
  auto& labeled = h.collect<api::PowerEstimate>("remote/conn9/power:estimation");
  bridge.on_connect(9);
  bridge.on_estimate(9, make_estimate(1, 3.0));  // No hello yet.
  h.actors.drain();
  ASSERT_EQ(labeled.items.size(), 1u);
  EXPECT_DOUBLE_EQ(labeled.items[0].watts, 3.0);
}

TEST(BusBridge, MergedOnlyModeSkipsPerAgentTopics) {
  BridgeHarness h;
  BusBridgeOptions options;
  options.per_agent_topics = false;
  BusBridge bridge(h.bus, options);
  auto& merged = h.collect<api::PowerEstimate>("remote/power:estimation");
  bridge.on_connect(1);
  bridge.on_hello(1, "h0", kWireVersion);
  const auto dead_letters_before = h.bus.dead_letter_count();
  bridge.on_estimate(1, make_estimate(1, 3.0));
  h.actors.drain();
  ASSERT_EQ(merged.items.size(), 1u);
  // No publish ever went to an unsubscribed per-agent topic.
  EXPECT_EQ(h.bus.dead_letter_count(), dead_letters_before);
}

}  // namespace
}  // namespace powerapi::net
