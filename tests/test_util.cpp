// Unit tests for the util layer: statistics, clock, RNG, CSV, strings,
// ring buffer, Result.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>

#include "util/arg_parser.h"
#include "util/clock.h"
#include "util/crc32c.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/result.h"
#include "util/ring_buffer.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/string_util.h"
#include "util/units.h"
#include "util/varint.h"

namespace powerapi::util {
namespace {

// --- units ---

TEST(Units, SecondConversionsRoundTrip) {
  EXPECT_DOUBLE_EQ(ns_to_seconds(seconds_to_ns(1.5)), 1.5);
  EXPECT_EQ(ms_to_ns(250), 250'000'000);
  EXPECT_DOUBLE_EQ(ghz_to_hz(3.3), 3.3e9);
  EXPECT_DOUBLE_EQ(hz_to_ghz(1.6e9), 1.6);
}

TEST(Units, EnergyIntegration) {
  EXPECT_DOUBLE_EQ(energy_joules(10.0, seconds_to_ns(2.0)), 20.0);
  EXPECT_DOUBLE_EQ(energy_joules(0.0, seconds_to_ns(100.0)), 0.0);
}

// --- RunningStats ---

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> xs = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), stddev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 9.0);
}

TEST(RunningStats, MergeEqualsConcatenation) {
  RunningStats a;
  RunningStats b;
  RunningStats whole;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    (i % 2 ? a : b).add(x);
    whole.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
}

TEST(RunningStats, EmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(42.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 42.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

// --- percentile / median ---

TEST(Percentile, KnownValues) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
  EXPECT_DOUBLE_EQ(median(xs), 3.0);
}

TEST(Percentile, InterpolatesBetweenRanks) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

TEST(Percentile, RejectsBadInput) {
  EXPECT_THROW(percentile({}, 50), std::invalid_argument);
  const std::vector<double> xs = {1.0};
  EXPECT_THROW(percentile(xs, -1), std::invalid_argument);
  EXPECT_THROW(percentile(xs, 101), std::invalid_argument);
}

class PercentileProperty : public ::testing::TestWithParam<int> {};

TEST_P(PercentileProperty, MonotoneAndBounded) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) xs.push_back(rng.uniform(-100, 100));
  double prev = percentile(xs, 0);
  for (double p = 5; p <= 100; p += 5) {
    const double v = percentile(xs, p);
    EXPECT_GE(v, prev);
    prev = v;
  }
  EXPECT_DOUBLE_EQ(percentile(xs, 0), *std::min_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(percentile(xs, 100), *std::max_element(xs.begin(), xs.end()));
}
INSTANTIATE_TEST_SUITE_P(Seeds, PercentileProperty, ::testing::Range(1, 8));

// --- error metrics ---

TEST(ErrorMetrics, PerfectEstimateIsZero) {
  const std::vector<double> ref = {10, 20, 30};
  EXPECT_DOUBLE_EQ(mape(ref, ref), 0.0);
  EXPECT_DOUBLE_EQ(median_ape(ref, ref), 0.0);
  EXPECT_DOUBLE_EQ(rmse(ref, ref), 0.0);
}

TEST(ErrorMetrics, KnownErrors) {
  const std::vector<double> ref = {10, 10, 10};
  const std::vector<double> est = {11, 9, 12};
  EXPECT_NEAR(mape(ref, est), (10 + 10 + 20) / 3.0, 1e-12);
  EXPECT_NEAR(median_ape(ref, est), 10.0, 1e-12);
  EXPECT_NEAR(rmse(ref, est), std::sqrt((1 + 1 + 4) / 3.0), 1e-12);
}

TEST(ErrorMetrics, SkipsNearZeroReference) {
  const std::vector<double> ref = {0.0, 10.0};
  const std::vector<double> est = {5.0, 11.0};
  const auto errs = absolute_percentage_errors(ref, est);
  ASSERT_EQ(errs.size(), 1u);
  EXPECT_NEAR(errs[0], 10.0, 1e-12);
}

TEST(ErrorMetrics, LengthMismatchThrows) {
  const std::vector<double> a = {1, 2};
  const std::vector<double> b = {1};
  EXPECT_THROW(mape(a, b), std::invalid_argument);
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
}

// --- Histogram ---

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);
  h.add(0.0);
  h.add(3.9);
  h.add(9.99);
  h.add(10.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(4), 1u);
  EXPECT_DOUBLE_EQ(h.bin_low(2), 4.0);
  EXPECT_THROW(h.bin_low(5), std::out_of_range);
  EXPECT_THROW(Histogram(0, 0, 3), std::invalid_argument);
  EXPECT_THROW(Histogram(0, 1, 0), std::invalid_argument);
}

// --- Clock ---

TEST(SimClock, AdvancesAndRejectsBackwards) {
  SimClock clock(100);
  EXPECT_EQ(clock.now(), 100);
  EXPECT_EQ(clock.advance(50), 150);
  clock.set(200);
  EXPECT_EQ(clock.now(), 200);
  EXPECT_THROW(clock.set(199), std::invalid_argument);
}

TEST(WallClock, MonotonicNonNegative) {
  WallClock clock;
  const auto a = clock.now();
  const auto b = clock.now();
  EXPECT_GE(a, 0);
  EXPECT_GE(b, a);
}

// --- Rng ---

TEST(Rng, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(0, 1), b.uniform(0, 1));
  }
}

TEST(Rng, ForkedStreamsDiffer) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c1.uniform_int(0, 1'000'000) == c2.uniform_int(0, 1'000'000)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, GaussianMoments) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.gaussian(5.0, 2.0));
  EXPECT_NEAR(stats.mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

// --- CSV ---

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterEnforcesWidth) {
  std::ostringstream out;
  CsvWriter writer(out);
  writer.header({"a", "b"});
  writer.row({"1", "2"});
  EXPECT_THROW(writer.row({"only-one"}), std::invalid_argument);
  EXPECT_THROW(writer.header({"again"}), std::logic_error);
  EXPECT_EQ(out.str(), "a,b\n1,2\n");
  EXPECT_EQ(writer.rows_written(), 1u);
}

TEST(Csv, FormatDoubleRoundTrips) {
  for (double v : {0.0, 1.5, -2.25, 31.48, 2.22e-9, 1e300}) {
    EXPECT_DOUBLE_EQ(std::stod(format_double(v)), v);
  }
}

// --- string_util ---

TEST(StringUtil, TrimAndSplit) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(trim(""), "");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  const auto trimmed = split_trimmed(" a ; ;b ", ';');
  ASSERT_EQ(trimmed.size(), 2u);
  EXPECT_EQ(trimmed[0], "a");
  EXPECT_EQ(trimmed[1], "b");
}

TEST(StringUtil, Parsers) {
  EXPECT_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_EQ(parse_double(" 2e-9 ").value(), 2e-9);
  EXPECT_FALSE(parse_double("3.5x").has_value());
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_EQ(parse_int("-42").value(), -42);
  EXPECT_FALSE(parse_int("12.5").has_value());
  const auto kv = parse_key_value(" key = value ");
  ASSERT_TRUE(kv.has_value());
  EXPECT_EQ(kv->first, "key");
  EXPECT_EQ(kv->second, "value");
  EXPECT_FALSE(parse_key_value("no equals").has_value());
}

TEST(StringUtil, JoinAndLower) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(to_lower("PowerAPI"), "powerapi");
  EXPECT_TRUE(starts_with("powerapi-model", "powerapi"));
  EXPECT_FALSE(starts_with("po", "powerapi"));
}

// --- RingBuffer ---

TEST(RingBuffer, KeepsMostRecent) {
  RingBuffer<int> rb(3);
  EXPECT_TRUE(rb.empty());
  for (int i = 1; i <= 5; ++i) rb.push(i);
  EXPECT_TRUE(rb.full());
  EXPECT_EQ(rb.size(), 3u);
  EXPECT_EQ(rb.at(0), 3);
  EXPECT_EQ(rb.at(2), 5);
  EXPECT_EQ(rb.back(), 5);
  const auto snap = rb.snapshot();
  EXPECT_EQ(snap, (std::vector<int>{3, 4, 5}));
  EXPECT_THROW(rb.at(3), std::out_of_range);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_THROW(rb.back(), std::out_of_range);
  EXPECT_THROW(RingBuffer<int>(0), std::invalid_argument);
}

// --- Result ---

TEST(Result, ValueAndError) {
  Result<int> ok(5);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(ok.value_or(9), 5);

  auto err = Result<int>::failure("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error_message(), "boom");
  EXPECT_EQ(err.value_or(9), 9);
  EXPECT_THROW(err.value(), std::runtime_error);
  EXPECT_THROW(ok.error_message(), std::logic_error);
}

TEST(Result, MapAndAndThen) {
  Result<int> ok(5);
  const auto doubled = ok.map([](int v) { return v * 2; });
  EXPECT_EQ(doubled.value(), 10);
  const auto chained = ok.and_then([](int v) -> Result<std::string> {
    return std::string(static_cast<std::size_t>(v), 'x');
  });
  EXPECT_EQ(chained.value(), "xxxxx");
  const auto err = Result<int>::failure("e").map([](int v) { return v; });
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error_message(), "e");
}


// --- logging ---

TEST(Logging, ParseLogLevelAcceptsKnownNamesCaseInsensitively) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("OFF"), LogLevel::kOff);
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("").has_value());
}

TEST(Logging, ConfigureLoggingConsumesLogLevelFlag) {
  Logger& logger = Logger::instance();
  const LogLevel saved = logger.level();

  char prog[] = "prog";
  char flag[] = "--log-level=debug";
  char other[] = "positional";
  char* argv[] = {prog, flag, other, nullptr};
  int argc = 3;
  configure_logging(argc, argv);
  EXPECT_EQ(logger.level(), LogLevel::kDebug);
  ASSERT_EQ(argc, 2);  // The flag was stripped...
  EXPECT_STREQ(argv[0], "prog");
  EXPECT_STREQ(argv[1], "positional");
  EXPECT_EQ(argv[2], nullptr);  // ...and argv stays null-terminated.

  char flag_word[] = "--log-level";
  char value[] = "error";
  char* argv2[] = {prog, flag_word, value, nullptr};
  int argc2 = 3;
  configure_logging(argc2, argv2);
  EXPECT_EQ(logger.level(), LogLevel::kError);
  EXPECT_EQ(argc2, 1);  // Two-token form consumes both.

  logger.set_level(saved);
}

TEST(Logging, ConcurrentSinkSwapAndLogDoNotRace) {
  // Regression: set_sink used to swap the sink under the same mutex log()
  // invoked it under; now the sink is an atomically swapped shared_ptr, so
  // loggers never block on (or observe a half-written) swap. Hammer both
  // sides; TSan (and the counters) verify no message is lost or torn.
  Logger& logger = Logger::instance();
  const LogLevel saved_level = logger.level();
  logger.set_level(LogLevel::kDebug);

  auto count_a = std::make_shared<std::atomic<std::uint64_t>>(0);
  auto count_b = std::make_shared<std::atomic<std::uint64_t>>(0);
  std::atomic<bool> stop{false};

  const auto make_sink = [](std::shared_ptr<std::atomic<std::uint64_t>> counter) {
    return [counter = std::move(counter)](LogLevel, std::string_view component,
                                          std::string_view message) {
      // Read both strings fully: a torn sink would show up here.
      if (!component.empty() && !message.empty()) {
        counter->fetch_add(1, std::memory_order_relaxed);
      }
    };
  };
  // Install a counting sink BEFORE any logger runs so no message falls
  // through to the stderr default.
  logger.set_sink(make_sink(count_a));

  std::thread swapper([&] {
    bool use_a = false;
    while (!stop.load(std::memory_order_relaxed)) {
      logger.set_sink(make_sink(use_a ? count_a : count_b));
      use_a = !use_a;
    }
  });

  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 2000;
  std::vector<std::thread> loggers;
  for (int t = 0; t < kThreads; ++t) {
    loggers.emplace_back([&logger] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        POWERAPI_LOG_DEBUG("race-test") << "message " << i;
      }
    });
  }
  for (auto& thread : loggers) thread.join();
  stop.store(true);
  swapper.join();
  logger.set_sink(nullptr);
  logger.set_level(saved_level);

  // Every message reached exactly one of the two sinks.
  EXPECT_EQ(count_a->load() + count_b->load(), kThreads * kPerThread);
}

// --- crc32c ---

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / common test vectors for CRC-32C (Castagnoli).
  EXPECT_EQ(crc32c("", 0), 0u);
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  unsigned char ascending[32];
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<unsigned char>(i);
  EXPECT_EQ(crc32c(ascending, sizeof(ascending)), 0x46DD794Eu);
  const unsigned char zeros[32] = {};
  EXPECT_EQ(crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
}

TEST(Crc32c, ExtendComposesAcrossChunks) {
  const std::string text = "the quick brown fox jumps over the lazy dog";
  const std::uint32_t whole = crc32c(text.data(), text.size());
  for (std::size_t split = 0; split <= text.size(); ++split) {
    std::uint32_t crc = crc32c(text.data(), split);
    crc = crc32c_extend(crc, text.data() + split, text.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  std::string data = "sensor payload 1234567890";
  const std::uint32_t good = crc32c(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
      EXPECT_NE(crc32c(data.data(), data.size()), good);
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
    }
  }
}

// --- varint ---

TEST(Varint, RoundTripsBoundaryValues) {
  const std::uint64_t values[] = {
      0,       1,      127,        128,        16383,    16384,
      2097151, 2097152, 0xFFFFFFFFull, 0x100000000ull,
      0x7FFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull};
  for (const std::uint64_t v : values) {
    std::vector<std::uint8_t> buf;
    put_varint(buf, v);
    EXPECT_LE(buf.size(), kMaxVarintBytes);
    std::uint64_t out = 0;
    EXPECT_EQ(get_varint(buf.data(), buf.size(), out), buf.size()) << v;
    EXPECT_EQ(out, v);
  }
}

TEST(Varint, EncodedSizeGrowsAtSevenBitBoundaries) {
  std::vector<std::uint8_t> one, two;
  put_varint(one, 127);
  put_varint(two, 128);
  EXPECT_EQ(one.size(), 1u);
  EXPECT_EQ(two.size(), 2u);
}

TEST(Varint, TruncatedInputRejected) {
  std::vector<std::uint8_t> buf;
  put_varint(buf, 0xFFFFFFFFFFFFFFFFull);
  std::uint64_t out = 0;
  for (std::size_t len = 0; len < buf.size(); ++len) {
    EXPECT_EQ(get_varint(buf.data(), len, out), 0u) << "len " << len;
  }
}

TEST(Varint, OverlongTenthByteRejected) {
  // Ten continuation-heavy bytes whose 10th carries bits beyond 2^64.
  const std::uint8_t overlong[10] = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                                     0xFF, 0xFF, 0xFF, 0xFF, 0x02};
  std::uint64_t out = 0;
  EXPECT_EQ(get_varint(overlong, sizeof(overlong), out), 0u);
}

TEST(Varint, ZigzagMapsSignAlternately) {
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
  EXPECT_EQ(zigzag_encode(-2), 3u);
  const std::int64_t values[] = {0, -1, 1, 1234567, -1234567,
                                 std::numeric_limits<std::int64_t>::min(),
                                 std::numeric_limits<std::int64_t>::max()};
  for (const std::int64_t v : values) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(v)), v);
    std::vector<std::uint8_t> buf;
    put_varint_signed(buf, v);
    std::int64_t out = 0;
    EXPECT_EQ(get_varint_signed(buf.data(), buf.size(), out), buf.size());
    EXPECT_EQ(out, v);
  }
}

TEST(Varint, SmallDeltasStaySmall) {
  // The wire format's timestamp deltas: a fixed period must encode tiny.
  std::vector<std::uint8_t> buf;
  put_varint_signed(buf, 250);  // 250ms period in some unit.
  EXPECT_LE(buf.size(), 2u);
}

// --- ArgParser ---

namespace {

/// Builds a mutable argv from string literals; keeps storage alive.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (auto& arg : storage) ptrs.push_back(arg.data());
    ptrs.push_back(nullptr);
    argc = static_cast<int>(storage.size());
  }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
  int argc = 0;
  char** argv() { return ptrs.data(); }
};

}  // namespace

TEST(ArgParser, ParsesAllKindsAndStripsThem) {
  bool flag = false;
  std::int64_t count = 1;
  std::size_t size = 2;
  double ratio = 0.5;
  std::string name = "default";
  ArgParser parser("prog", "test");
  parser.add_flag("verbose", &flag, "");
  parser.add_int64("count", &count, "");
  parser.add_size("size", &size, "");
  parser.add_double("ratio", &ratio, "");
  parser.add_string("name", &name, "");

  Argv args({"prog", "--verbose", "--count", "-3", "--size=42", "positional",
             "--ratio", "0.25", "--name=x"});
  const auto exit_code = parser.parse(args.argc, args.argv());
  EXPECT_FALSE(exit_code.has_value());
  EXPECT_TRUE(flag);
  EXPECT_EQ(count, -3);
  EXPECT_EQ(size, 42u);
  EXPECT_DOUBLE_EQ(ratio, 0.25);
  EXPECT_EQ(name, "x");
  // Recognized options were consumed; positionals remain in order.
  ASSERT_EQ(args.argc, 2);
  EXPECT_STREQ(args.argv()[0], "prog");
  EXPECT_STREQ(args.argv()[1], "positional");
  EXPECT_EQ(args.argv()[2], nullptr);
}

TEST(ArgParser, HelpReturnsZeroAndListsOptions) {
  std::int64_t hosts = 8;
  ArgParser parser("prog", "a description");
  parser.add_int64("hosts", &hosts, "host count");
  Argv args({"prog", "--help"});
  testing::internal::CaptureStdout();
  const auto exit_code = parser.parse(args.argc, args.argv());
  const std::string help = testing::internal::GetCapturedStdout();
  ASSERT_TRUE(exit_code.has_value());
  EXPECT_EQ(*exit_code, 0);
  EXPECT_NE(help.find("--hosts"), std::string::npos);
  EXPECT_NE(help.find("default: 8"), std::string::npos);
  EXPECT_NE(help.find("a description"), std::string::npos);
  EXPECT_NE(help.find("--log-level"), std::string::npos);
}

TEST(ArgParser, RejectsUnknownAndMalformed) {
  std::int64_t n = 0;
  {
    ArgParser parser("prog", "");
    parser.add_int64("n", &n, "");
    Argv args({"prog", "--bogus"});
    testing::internal::CaptureStderr();
    const auto exit_code = parser.parse(args.argc, args.argv());
    testing::internal::GetCapturedStderr();
    ASSERT_TRUE(exit_code.has_value());
    EXPECT_EQ(*exit_code, 2);
  }
  {
    ArgParser parser("prog", "");
    parser.add_int64("n", &n, "");
    Argv args({"prog", "--n", "not-a-number"});
    testing::internal::CaptureStderr();
    const auto exit_code = parser.parse(args.argc, args.argv());
    testing::internal::GetCapturedStderr();
    ASSERT_TRUE(exit_code.has_value());
    EXPECT_EQ(*exit_code, 2);
  }
  {
    // Missing value at end of argv.
    ArgParser parser("prog", "");
    parser.add_int64("n", &n, "");
    Argv args({"prog", "--n"});
    testing::internal::CaptureStderr();
    const auto exit_code = parser.parse(args.argc, args.argv());
    testing::internal::GetCapturedStderr();
    ASSERT_TRUE(exit_code.has_value());
    EXPECT_EQ(*exit_code, 2);
  }
}

TEST(ArgParser, IntKindsRejectNonIntegralAndNegativeSizes) {
  std::int64_t n = 0;
  std::size_t s = 0;
  {
    ArgParser parser("prog", "");
    parser.add_int64("n", &n, "");
    Argv args({"prog", "--n=1.5"});
    testing::internal::CaptureStderr();
    const auto exit_code = parser.parse(args.argc, args.argv());
    testing::internal::GetCapturedStderr();
    ASSERT_TRUE(exit_code.has_value());
  }
  {
    ArgParser parser("prog", "");
    parser.add_size("s", &s, "");
    Argv args({"prog", "--s=-4"});
    testing::internal::CaptureStderr();
    const auto exit_code = parser.parse(args.argc, args.argv());
    testing::internal::GetCapturedStderr();
    ASSERT_TRUE(exit_code.has_value());
  }
}

}  // namespace
}  // namespace powerapi::util
