// Tests for the measurement layer: the simulated PowerSpy meter, the RAPL
// MSR emulation, the HPC event vocabulary, the sim/perf backends and
// counter multiplexing.
#include <gtest/gtest.h>

#include <memory>

#include "hpc/events.h"
#include "hpc/multiplex.h"
#include "hpc/perf_backend.h"
#include "hpc/sim_backend.h"
#include "os/system.h"
#include "powermeter/powerspy.h"
#include "powermeter/rapl.h"
#include "util/stats.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

// --- PowerSpy ---

TEST(PowerSpy, MeasuresAverageTruePowerWithBoundedNoise) {
  double energy = 0.0;
  util::TimestampNs now = 0;
  powermeter::PowerSpy::Options options;
  options.noise_sigma_watts = 0.2;
  options.smoothing_alpha = 1.0;  // No EMA: test the raw chain.
  options.drop_probability = 0.0;
  powermeter::PowerSpy meter([&] { return energy; }, [&] { return now; }, util::Rng(1),
                             options);
  EXPECT_FALSE(meter.sample().has_value());  // Priming call.

  util::RunningStats stats;
  for (int i = 0; i < 500; ++i) {
    now += ms_to_ns(100);
    energy += 40.0 * 0.1;  // Constant 40 W.
    const auto s = meter.sample();
    ASSERT_TRUE(s.has_value());
    stats.add(s->watts);
  }
  EXPECT_NEAR(stats.mean(), 40.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 0.2, 0.05);
}

TEST(PowerSpy, QuantizesToAdcStep) {
  double energy = 0.0;
  util::TimestampNs now = 0;
  powermeter::PowerSpy::Options options;
  options.noise_sigma_watts = 0.0;
  options.quantum_watts = 0.5;
  options.smoothing_alpha = 1.0;
  options.drop_probability = 0.0;
  powermeter::PowerSpy meter([&] { return energy; }, [&] { return now; }, util::Rng(2),
                             options);
  meter.sample();
  now += ms_to_ns(100);
  energy += 33.33 * 0.1;
  const auto s = meter.sample();
  ASSERT_TRUE(s.has_value());
  EXPECT_DOUBLE_EQ(std::fmod(s->watts, 0.5), 0.0);
  EXPECT_NEAR(s->watts, 33.5, 0.26);
}

TEST(PowerSpy, DropsSamplesAtConfiguredRate) {
  double energy = 0.0;
  util::TimestampNs now = 0;
  powermeter::PowerSpy::Options options;
  options.drop_probability = 0.3;
  powermeter::PowerSpy meter([&] { return energy; }, [&] { return now; }, util::Rng(3),
                             options);
  meter.sample();
  int delivered = 0;
  for (int i = 0; i < 1000; ++i) {
    now += ms_to_ns(10);
    energy += 0.1;
    if (meter.sample()) ++delivered;
  }
  EXPECT_NEAR(delivered, 700, 60);
}

TEST(PowerSpy, RejectsBadConfig) {
  auto e = [] { return 0.0; };
  auto t = [] { return util::TimestampNs{0}; };
  powermeter::PowerSpy::Options options;
  options.smoothing_alpha = 0.0;
  EXPECT_THROW(powermeter::PowerSpy(e, t, util::Rng(1), options), std::invalid_argument);
  EXPECT_THROW(powermeter::PowerSpy(nullptr, t, util::Rng(1)), std::invalid_argument);
}

TEST(PowerSpy, RecordTraceCollectsSeries) {
  double energy = 0.0;
  util::TimestampNs now = 0;
  powermeter::PowerSpy::Options options;
  options.drop_probability = 0.0;
  powermeter::PowerSpy meter([&] { return energy; }, [&] { return now; }, util::Rng(4),
                             options);
  const auto trace = powermeter::record_trace(meter, ms_to_ns(100), seconds_to_ns(1),
                                              [&](util::DurationNs dt) {
                                                now += dt;
                                                energy += 25.0 * util::ns_to_seconds(dt);
                                              });
  EXPECT_EQ(trace.size(), 10u);
  for (const auto& s : trace) EXPECT_NEAR(s.watts, 25.0, 2.0);
}

// --- RAPL ---

TEST(Rapl, ReportsPackageEnergyInUnits) {
  double energy = 0.0;
  util::TimestampNs now = 0;
  powermeter::RaplMsr msr([&] { return energy; }, [&] { return now; });
  const auto r0 = msr.read_energy_status();
  energy += 10.0;  // 10 J.
  now += powermeter::RaplMsr::kUpdatePeriodNs;
  const auto r1 = msr.read_energy_status();
  EXPECT_NEAR(powermeter::RaplMsr::energy_between(r0, r1), 10.0, 1e-3);
}

TEST(Rapl, CounterWrapsAround) {
  // 2^32 units = 65536 J; wrap must still difference correctly.
  const std::uint32_t before = 0xffffff00u;
  const std::uint32_t after = 0x00000100u;
  EXPECT_NEAR(powermeter::RaplMsr::energy_between(before, after),
              512 * powermeter::RaplMsr::kJoulesPerUnit, 1e-9);
}

TEST(Rapl, QuantizesUpdatesToMsrPeriod) {
  double energy = 0.0;
  util::TimestampNs now = 0;
  powermeter::RaplMsr msr([&] { return energy; }, [&] { return now; });
  const auto r0 = msr.read_energy_status();
  energy += 5.0;
  now += powermeter::RaplMsr::kUpdatePeriodNs / 2;  // Within the same period.
  EXPECT_EQ(msr.read_energy_status(), r0);          // Cached value.
  now += powermeter::RaplMsr::kUpdatePeriodNs;
  EXPECT_NE(msr.read_energy_status(), r0);
}

TEST(Rapl, UnavailableOnOldArchitectures) {
  powermeter::RaplMsr msr([] { return 0.0; }, [] { return util::TimestampNs{0}; },
                          /*available=*/false);
  EXPECT_FALSE(msr.available());
  EXPECT_THROW(msr.read_energy_status(), std::runtime_error);
}

// --- HPC events ---

TEST(Events, NamesRoundTrip) {
  for (const hpc::EventId id : hpc::all_events()) {
    const auto name = hpc::to_string(id);
    const auto back = hpc::event_from_string(name);
    ASSERT_TRUE(back.has_value()) << name;
    EXPECT_EQ(*back, id);
  }
  EXPECT_FALSE(hpc::event_from_string("flux-capacitor").has_value());
}

TEST(Events, PaperEventsAreTheThreeGenericCounters) {
  const auto events = hpc::paper_events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0], hpc::EventId::kInstructions);
  EXPECT_EQ(events[1], hpc::EventId::kCacheReferences);
  EXPECT_EQ(events[2], hpc::EventId::kCacheMisses);
}

TEST(Events, EventValuesFromBlockAndDelta) {
  simcpu::CounterBlock block;
  block.instructions = 100;
  block.cache_misses = 7;
  const auto values = hpc::EventValues::from_block(block);
  EXPECT_EQ(values[hpc::EventId::kInstructions], 100u);
  EXPECT_EQ(values[hpc::EventId::kCacheMisses], 7u);

  simcpu::CounterBlock later = block;
  later.instructions = 150;
  const auto delta = hpc::EventValues::from_block(later).delta_since(values);
  EXPECT_EQ(delta[hpc::EventId::kInstructions], 50u);
  EXPECT_EQ(delta[hpc::EventId::kCacheMisses], 0u);
}

// --- Sim backend ---

TEST(SimBackend, ReadsMachineAndProcessScopes) {
  os::System system(simcpu::i3_2120());
  const os::Pid pid = system.spawn(
      "app", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(), 0));
  system.run_for(ms_to_ns(5));

  hpc::SimBackend backend(system);
  EXPECT_EQ(backend.name(), "sim");
  EXPECT_TRUE(backend.supports(hpc::EventId::kCycles));

  const auto machine = backend.read(hpc::Target::machine());
  ASSERT_TRUE(machine.ok());
  EXPECT_GT(machine.value()[hpc::EventId::kInstructions], 0u);

  const auto process = backend.read(hpc::Target::process(pid));
  ASSERT_TRUE(process.ok());
  EXPECT_LE(process.value()[hpc::EventId::kInstructions],
            machine.value()[hpc::EventId::kInstructions]);

  const auto missing = backend.read(hpc::Target::process(999));
  EXPECT_FALSE(missing.ok());
}

// --- Multiplexing ---

TEST(Multiplex, ScaledEstimatesTrackTruthForSteadyRates) {
  os::System system(simcpu::i3_2120());
  system.spawn("app",
               std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(), 0));

  auto inner = std::make_unique<hpc::SimBackend>(system);
  std::vector<hpc::EventId> events(hpc::all_events().begin(), hpc::all_events().end());
  hpc::MultiplexingBackend mux(std::move(inner), events, /*hardware_width=*/4);
  EXPECT_EQ(mux.groups(), 3u);  // 10 events over 4 counters.

  // Warm up, then compare scaled estimate against the true counters over a
  // long steady window: multiplexing scaling should land within ~20%.
  system.run_for(ms_to_ns(5));
  auto first = mux.read(hpc::Target::machine());
  ASSERT_TRUE(first.ok());
  const auto true_start =
      hpc::EventValues::from_block(system.machine().machine_counters());

  hpc::EventValues estimate = first.value();
  for (int i = 0; i < 120; ++i) {
    system.run_for(ms_to_ns(2));
    const auto r = mux.read(hpc::Target::machine());
    ASSERT_TRUE(r.ok());
    estimate = r.value();
  }
  const auto true_end = hpc::EventValues::from_block(system.machine().machine_counters());
  const auto true_delta = true_end.delta_since(true_start);
  const auto est_delta = estimate.delta_since(first.value());
  const double truth = static_cast<double>(true_delta[hpc::EventId::kInstructions]);
  const double est = static_cast<double>(est_delta[hpc::EventId::kInstructions]);
  EXPECT_NEAR(est / truth, 1.0, 0.2);
}

TEST(Multiplex, RejectsBadConfiguration) {
  os::System system(simcpu::i3_2120());
  std::vector<hpc::EventId> events = {hpc::EventId::kCycles};
  EXPECT_THROW(hpc::MultiplexingBackend(nullptr, events, 4), std::invalid_argument);
  EXPECT_THROW(
      hpc::MultiplexingBackend(std::make_unique<hpc::SimBackend>(system), events, 0),
      std::invalid_argument);
  EXPECT_THROW(hpc::MultiplexingBackend(std::make_unique<hpc::SimBackend>(system), {}, 4),
               std::invalid_argument);
}

TEST(Multiplex, UnlistedEventUnsupported) {
  os::System system(simcpu::i3_2120());
  std::vector<hpc::EventId> events = {hpc::EventId::kCycles};
  hpc::MultiplexingBackend mux(std::make_unique<hpc::SimBackend>(system), events, 4);
  EXPECT_TRUE(mux.supports(hpc::EventId::kCycles));
  EXPECT_FALSE(mux.supports(hpc::EventId::kCacheMisses));
}

// --- Perf backend (graceful behavior regardless of kernel permissions) ---

TEST(PerfBackend, MachineScopeIsRejected) {
  hpc::PerfBackend backend;
  const auto r = backend.read(hpc::Target::machine());
  EXPECT_FALSE(r.ok());
}

TEST(PerfBackend, SelfReadWorksOrFailsGracefully) {
  hpc::PerfBackend backend;
  const auto r = backend.read(hpc::Target::process(0));  // 0 = calling process.
  if (hpc::PerfBackend::available()) {
    ASSERT_TRUE(r.ok());
    // Burn some cycles, expect the counter to move.
    double sink = 0;
    for (int i = 0; i < 2'000'000; ++i) sink += i * 0.5;
    ASSERT_GT(sink, 0.0);  // Keep the loop observable.
    const auto r2 = backend.read(hpc::Target::process(0));
    ASSERT_TRUE(r2.ok());
    EXPECT_GT(r2.value()[hpc::EventId::kInstructions],
              r.value()[hpc::EventId::kInstructions]);
  } else {
    EXPECT_FALSE(r.ok());
    EXPECT_FALSE(r.error_message().empty());
  }
}

}  // namespace
}  // namespace powerapi
