// Self-observability layer: histogram bucket math at the edges, sharded
// counter exactness under contention, snapshot consistency under concurrent
// writers, trace JSON well-formedness (parsed back by a minimal validating
// JSON reader), self-overhead accounting, and the obs wiring through a
// kManual PowerMeter and a threaded FleetMonitor (the latter doubles as the
// TSan workout for the whole instrumentation path).
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <limits>
#include <memory>
#include <sstream>
#include <thread>
#include <vector>

#include "actors/event_bus.h"
#include "obs/observability.h"
#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "powerapi/power_meter.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

#include "json_reader.h"

namespace powerapi::obs {
namespace {

// --- Histogram bucket math ---

TEST(Histogram, SmallValuesMapToIdentityBuckets) {
  // Below 2^kSubBucketBits the bucketing is exact: one value per bucket.
  for (std::int64_t v = 0; v < Histogram::kSubBucketCount; ++v) {
    EXPECT_EQ(Histogram::bucket_index(v), static_cast<std::size_t>(v)) << v;
    EXPECT_EQ(Histogram::bucket_lower_bound(static_cast<std::size_t>(v)), v) << v;
  }
}

TEST(Histogram, BucketBoundsAreMonotoneAndConsistent) {
  std::int64_t previous = -1;
  for (std::size_t i = 0; i < 512; ++i) {
    const std::int64_t bound = Histogram::bucket_lower_bound(i);
    EXPECT_GT(bound, previous) << "bucket " << i;
    // The lower bound of a bucket maps back to that bucket...
    EXPECT_EQ(Histogram::bucket_index(bound), i);
    // ...and the value just below it maps to the previous one.
    if (bound > 0) EXPECT_EQ(Histogram::bucket_index(bound - 1), i - 1);
    previous = bound;
  }
}

TEST(Histogram, ZeroRecordsInBucketZero) {
  Histogram hist;
  hist.record(0);
  const HistogramData data = hist.data();
  EXPECT_EQ(data.count, 1u);
  ASSERT_EQ(data.buckets.size(), 1u);
  EXPECT_EQ(data.buckets[0].first, 0);
  EXPECT_EQ(data.buckets[0].second, 1u);
}

TEST(Histogram, NegativeValuesClampToZero) {
  Histogram hist;
  hist.record(-5);
  hist.record(std::numeric_limits<std::int64_t>::min());
  const HistogramData data = hist.data();
  EXPECT_EQ(data.count, 2u);
  EXPECT_EQ(data.overflow, 0u);
  ASSERT_EQ(data.buckets.size(), 1u);
  EXPECT_EQ(data.buckets[0].first, 0);
  EXPECT_EQ(data.buckets[0].second, 2u);
}

TEST(Histogram, ValuesAboveMaxClampIntoLastBucketAndCountOverflow) {
  Histogram hist(/*max_value=*/1000);
  hist.record(1000);     // At max: not overflow.
  hist.record(1001);     // Above: clamped + counted.
  hist.record(std::numeric_limits<std::int64_t>::max());
  const HistogramData data = hist.data();
  EXPECT_EQ(data.count, 3u);
  EXPECT_EQ(data.overflow, 2u);
  // All three landed in the same (clamp) bucket.
  ASSERT_EQ(data.buckets.size(), 1u);
  EXPECT_EQ(data.buckets[0].second, 3u);
  EXPECT_EQ(Histogram::bucket_index(1000), Histogram::bucket_index(data.buckets[0].first));
}

TEST(Histogram, MeanAndPercentilesResolveToBucketBounds) {
  Histogram hist;
  for (int i = 0; i < 100; ++i) hist.record(10);
  hist.record(100000);
  const HistogramData data = hist.data();
  EXPECT_EQ(data.count, 101u);
  EXPECT_NEAR(data.mean(), (100 * 10.0 + 100000.0) / 101.0, 1e-9);
  EXPECT_EQ(data.percentile(0.5), 10.0);
  // p999 falls in the bucket holding 100000: resolved to its lower bound,
  // within the ~6 % bucket resolution.
  EXPECT_NEAR(data.percentile(0.999), 100000.0, 100000.0 * 0.07);
  EXPECT_EQ(data.percentile(0.0), 10.0);
  EXPECT_GE(data.percentile(1.0), data.percentile(0.5));
}

TEST(Histogram, EmptyHistogramIsWellBehaved) {
  Histogram hist;
  const HistogramData data = hist.data();
  EXPECT_EQ(data.count, 0u);
  EXPECT_EQ(data.mean(), 0.0);
  EXPECT_EQ(data.percentile(0.5), 0.0);
  EXPECT_TRUE(data.buckets.empty());
}

// --- Counter ---

TEST(Counter, ConcurrentAddsSumExactly) {
  Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

// --- Registry ---

TEST(MetricsRegistry, InterningReturnsTheSameInstance) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x.count");
  Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  MetricsRegistry registry;
  registry.counter("metric");
  EXPECT_THROW(registry.gauge("metric"), std::logic_error);
  EXPECT_THROW(registry.histogram("metric"), std::logic_error);
}

TEST(MetricsRegistry, SnapshotIsSortedAndQueryable) {
  MetricsRegistry registry;
  registry.counter("b.count").add(2);
  registry.gauge("a.value").set(1.5);
  registry.histogram("c.latency_ns").record(42);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "a.value");
  EXPECT_EQ(snap.metrics[1].name, "b.count");
  EXPECT_EQ(snap.metrics[2].name, "c.latency_ns");
  EXPECT_EQ(snap.value_of("b.count"), 2.0);
  EXPECT_EQ(snap.value_of("a.value"), 1.5);
  EXPECT_EQ(snap.value_of("missing", -1.0), -1.0);
  ASSERT_NE(snap.find("c.latency_ns"), nullptr);
  EXPECT_EQ(snap.find("c.latency_ns")->hist.count, 1u);
}

TEST(MetricsRegistry, CollectorsContributeGaugesUntilRemoved) {
  MetricsRegistry registry;
  const auto id = registry.add_collector(
      [](SnapshotBuilder& builder) { builder.gauge("pulled.value", 7.0); });
  EXPECT_EQ(registry.snapshot().value_of("pulled.value"), 7.0);
  registry.remove_collector(id);
  EXPECT_EQ(registry.snapshot().find("pulled.value"), nullptr);
}

TEST(MetricsRegistry, SnapshotUnderConcurrentUpdatesNeverGoesBackwards) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("spin.count");
  Histogram& hist = registry.histogram("spin.latency_ns");
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      std::int64_t v = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        counter.add();
        hist.record(v++ & 0xFFFF);
      }
    });
  }
  double last_count = 0.0;
  std::uint64_t last_hist = 0;
  for (int i = 0; i < 50; ++i) {
    const MetricsSnapshot snap = registry.snapshot();
    const double count = snap.value_of("spin.count");
    EXPECT_GE(count, last_count);  // Counters are monotone across snapshots.
    last_count = count;
    const MetricValue* h = snap.find("spin.latency_ns");
    ASSERT_NE(h, nullptr);
    EXPECT_GE(h->hist.count, last_hist);
    last_hist = h->hist.count;
    // Bucket counts can lag count_ slightly (relaxed copies), never exceed
    // it by the time the fold finishes plus concurrent increments.
    std::uint64_t bucket_sum = 0;
    for (const auto& [bound, n] : h->hist.buckets) bucket_sum += n;
    EXPECT_LE(h->hist.overflow, h->hist.count);
    if (h->hist.count > 0) EXPECT_GT(bucket_sum, 0u);
  }
  stop.store(true);
  for (auto& writer : writers) writer.join();
}

// --- JSON validation (tests/json_reader.h, shared with test_obs_net) ---

using powerapi::testing::JsonReader;

TEST(JsonReaderSelfCheck, AcceptsValidRejectsBroken) {
  EXPECT_TRUE(JsonReader(R"({"a":[1,2.5,-3e4],"b":"x\"y","c":null})").valid());
  EXPECT_FALSE(JsonReader(R"({"a":1)").valid());
  EXPECT_FALSE(JsonReader(R"({"a" 1})").valid());
  EXPECT_FALSE(JsonReader("{}{}").valid());
}

// --- Trace collector ---

TEST(TraceCollector, RecordsFromManyThreadsAndEmitsValidJson) {
  TraceCollector trace;
  const auto name = trace.intern("stage");
  const auto tick = trace.intern("tick");
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        trace.complete(name, 1000 * t + i, 10, static_cast<std::uint64_t>(i));
        trace.instant(tick, 1000 * t + i, static_cast<std::uint64_t>(i));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(trace.size(), 800u);
  EXPECT_EQ(trace.dropped(), 0u);

  std::ostringstream out;
  trace.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonReader(json).valid()) << json.substr(0, 200);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"stage\""), std::string::npos);
}

TEST(TraceCollector, EscapesHostileNamesInJson) {
  TraceCollector trace;
  const auto name = trace.intern("evil \"name\"\\with\nnewline");
  trace.instant(name, 1);
  std::ostringstream out;
  trace.write_chrome_trace(out);
  EXPECT_TRUE(JsonReader(out.str()).valid()) << out.str();
}

TEST(TraceCollector, CapacityOverflowDropsAndCounts) {
  TraceCollector trace(/*capacity=*/32);  // 2 events per shard.
  const auto name = trace.intern("spam");
  for (int i = 0; i < 1000; ++i) trace.complete(name, i, 1);
  EXPECT_LE(trace.size(), 32u);
  EXPECT_EQ(trace.size() + trace.dropped(), 1000u);
  std::ostringstream out;
  trace.write_chrome_trace(out);
  EXPECT_TRUE(JsonReader(out.str()).valid());
}

TEST(TraceCollector, DropsFeedTheCounterAndTraceMetadata) {
  MetricsRegistry registry;
  TraceCollector trace(/*capacity=*/32);
  trace.set_drop_counter(&registry.counter("obs.trace.spans_dropped"));
  const auto name = trace.intern("spam");
  for (int i = 0; i < 200; ++i) trace.complete(name, i, 1);
  ASSERT_GT(trace.dropped(), 0u);
  // The registry counter mirrors the collector's own tally, so drops stay
  // visible in metric snapshots (and over the wire) after the trace is gone.
  EXPECT_EQ(registry.snapshot().value_of("obs.trace.spans_dropped"),
            static_cast<double>(trace.dropped()));
  // And the Chrome trace itself carries the count as metadata.
  std::ostringstream out;
  trace.write_chrome_trace(out);
  const std::string json = out.str();
  EXPECT_TRUE(JsonReader(json).valid()) << json.substr(0, 200);
  EXPECT_NE(json.find("spans_dropped"), std::string::npos) << json.substr(0, 200);
}

TEST(TraceCollector, DisabledRecordsNothing) {
  TraceCollector trace;
  const auto name = trace.intern("quiet");
  trace.set_enabled(false);
  trace.complete(name, 0, 5);
  trace.instant(name, 0);
  { ScopedSpan span(&trace, name); }
  EXPECT_EQ(trace.size(), 0u);
}

TEST(ScopedSpan, NullCollectorIsSafeAndLiveOneRecords) {
  { ScopedSpan span(nullptr, 1); }  // Must not crash.
  TraceCollector trace;
  const auto name = trace.intern("span");
  { ScopedSpan span(&trace, name, 42); }
  EXPECT_EQ(trace.size(), 1u);
}

// --- Self-overhead accounting ---

TEST(SelfMonitor, MeasuresCpuAndConvertsToWatts) {
  SelfMonitor self;
  self.set_watts_per_core(25.0);
  // Burn a little CPU so the window has something to see.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1e-9;
  const SelfMonitor::Usage usage = self.sample();
  EXPECT_GT(usage.wall_seconds, 0.0);
  EXPECT_GE(usage.cpu_seconds, 0.0);
  EXPECT_GE(usage.cpu_share_cores, 0.0);
  EXPECT_NEAR(usage.estimated_watts, usage.cpu_share_cores * 25.0, 1e-9);
  EXPECT_GE(usage.total_cpu_seconds, usage.cpu_seconds);
  // Cumulative fields are monotone across windows.
  const SelfMonitor::Usage next = self.sample();
  EXPECT_GE(next.total_cpu_seconds, usage.total_cpu_seconds);
  EXPECT_GE(next.total_joules, usage.total_joules);
}

TEST(SelfMonitor, ProcessCpuSecondsIsMonotone) {
  const double first = process_cpu_seconds();
  EXPECT_GE(first, 0.0);
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1e-9;
  EXPECT_GE(process_cpu_seconds(), first);
}

// --- Observability bundle ---

TEST(Observability, SelfGaugesAppearInSnapshots) {
  Observability obs;
  const MetricsSnapshot snap = obs.metrics.snapshot();
  EXPECT_NE(snap.find("self.cpu_share_cores"), nullptr);
  EXPECT_NE(snap.find("self.watts"), nullptr);
  EXPECT_NE(snap.find("trace.events"), nullptr);
}

TEST(Observability, DisableStopsTraceRecording) {
  Observability obs;
  obs.set_enabled(false);
  EXPECT_FALSE(obs.enabled());
  EXPECT_FALSE(obs.trace.enabled());
  obs.set_enabled(true);
  EXPECT_TRUE(obs.trace.enabled());
}

}  // namespace
}  // namespace powerapi::obs

namespace powerapi::api {
namespace {

using powerapi::testing::JsonReader;

model::CpuPowerModel obs_test_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheMisses};
    const double scale = hz / 3.3e9;
    f.coefficients = {2.2e-9 * scale, 1.6e-7};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(31.0, std::move(formulas));
}

std::unique_ptr<os::System> obs_test_host() {
  auto host = std::make_unique<os::System>(simcpu::i3_2120());
  host->spawn("app", std::make_unique<workloads::SteadyBehavior>(
                         workloads::cpu_stress(0.7), 0));
  return host;
}

// --- Event bus dead letters ---

TEST(EventBusObs, DeadLettersAreCountedAndExposed) {
  // The bundle must outlive the bus (the bus unregisters its collector on
  // destruction), so it is declared first.
  obs::Observability obs;
  actors::ActorSystem system(actors::ActorSystem::Mode::kManual);
  actors::EventBus bus(system);
  bus.set_observability(&obs);
  const auto topic = bus.intern("nobody:listens");
  bus.publish(topic, 123);
  bus.publish(topic, 456);
  EXPECT_EQ(bus.dead_letter_count(), 2u);
  const obs::MetricsSnapshot snap = obs.metrics.snapshot();
  EXPECT_EQ(snap.value_of("bus.dead_letters"), 2.0);
  EXPECT_EQ(snap.value_of("bus.topic.nobody:listens.drops"), 2.0);
}

TEST(EventBusObs, DeadLettersCountWithoutObservabilityToo) {
  actors::ActorSystem system(actors::ActorSystem::Mode::kManual);
  actors::EventBus bus(system);
  bus.publish(bus.intern("void"), 1);
  EXPECT_EQ(bus.dead_letter_count(), 1u);
}

// --- End-to-end: kManual PowerMeter with observability ---

TEST(PowerMeterObs, StampsSequencesAndRecordsPipelineMetrics) {
  auto host = obs_test_host();
  obs::Observability obs;
  // Declared before the meter: the reporter's final flush at actor stop
  // (inside ~PowerMeter) still writes here.
  std::ostringstream csv;
  std::vector<std::uint64_t> seqs;
  PowerMeter::Config config;
  config.period = util::ms_to_ns(100);
  config.with_powerspy = false;
  config.observability = &obs;
  PowerMeter meter(*host, obs_test_model(), config);

  meter.add_callback_reporter(
      [&seqs](const AggregatedPower& row) { seqs.push_back(row.seq); });
  meter.pipeline().add_metrics_reporter(csv, MetricsReporter::Format::kCsv,
                                        /*every_n_ticks=*/5);
  meter.monitor_all();
  meter.run_for(util::seconds_to_ns(2));
  meter.finish();

  // Every aggregated row carries the seq of the tick it came from.
  ASSERT_FALSE(seqs.empty());
  for (const std::uint64_t seq : seqs) EXPECT_GT(seq, 0u);
  // Seqs are non-decreasing (rows flush in tick order under kManual).
  for (std::size_t i = 1; i < seqs.size(); ++i) EXPECT_GE(seqs[i], seqs[i - 1]);

  const obs::MetricsSnapshot snap = obs.metrics.snapshot();
  EXPECT_EQ(snap.value_of("pipeline.ticks"), 20.0);
  EXPECT_GT(snap.value_of("pipeline.sensor_reports"), 0.0);
  EXPECT_GT(snap.value_of("pipeline.estimates"), 0.0);
  EXPECT_GT(snap.value_of("pipeline.aggregated_rows"), 0.0);
  EXPECT_GT(snap.value_of("actors.messages_processed"), 0.0);
  const auto* latency = snap.find("pipeline.tick_to_aggregate_ns");
  ASSERT_NE(latency, nullptr);
  EXPECT_GT(latency->hist.count, 0u);
  const auto* mailbox = snap.find("actors.mailbox.latency_ns");
  ASSERT_NE(mailbox, nullptr);
  EXPECT_GT(mailbox->hist.count, 0u);

  // The CSV reporter emitted a header plus rows.
  const std::string csv_text = csv.str();
  EXPECT_EQ(csv_text.rfind("seq,metric,stat,value\n", 0), 0u) << csv_text.substr(0, 80);
  EXPECT_NE(csv_text.find("pipeline.ticks"), std::string::npos);
  // Exactly one header even across multiple snapshots.
  EXPECT_EQ(csv_text.find("seq,metric,stat,value", 1), std::string::npos);

  // The trace captured spans for every stage, and the JSON parses.
  EXPECT_GT(obs.trace.size(), 0u);
  std::ostringstream trace_json;
  obs.trace.write_chrome_trace(trace_json);
  EXPECT_TRUE(JsonReader(trace_json.str()).valid());
  EXPECT_NE(trace_json.str().find("sensor-hpc"), std::string::npos);
}

TEST(PowerMeterObs, JsonReporterEmitsOneValidObjectPerLine) {
  auto host = obs_test_host();
  obs::Observability obs;
  std::ostringstream out;  // Outlives the meter (final flush at stop).
  PowerMeter::Config config;
  config.period = util::ms_to_ns(100);
  config.observability = &obs;
  PowerMeter meter(*host, obs_test_model(), config);
  meter.pipeline().add_metrics_reporter(out, MetricsReporter::Format::kJson,
                                        /*every_n_ticks=*/5);
  meter.monitor_all();
  meter.run_for(util::seconds_to_ns(1));
  meter.finish();
  std::istringstream lines(out.str());
  std::string line;
  int parsed = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonReader(line).valid()) << line.substr(0, 120);
    EXPECT_EQ(line.rfind("{\"seq\":", 0), 0u);
    ++parsed;
  }
  EXPECT_GT(parsed, 0);
}

TEST(PowerMeterObs, WithoutObservabilityNothingIsStamped) {
  auto host = obs_test_host();
  PowerMeter::Config config;
  config.period = util::ms_to_ns(100);
  PowerMeter meter(*host, obs_test_model(), config);
  std::vector<std::uint64_t> seqs;
  meter.add_callback_reporter(
      [&seqs](const AggregatedPower& row) { seqs.push_back(row.seq); });
  EXPECT_THROW(meter.pipeline().add_metrics_reporter(std::cout), std::logic_error);
  meter.monitor_all();
  meter.run_for(util::seconds_to_ns(1));
  meter.finish();
  ASSERT_FALSE(seqs.empty());
  for (const std::uint64_t seq : seqs) EXPECT_EQ(seq, 0u);
}

// --- End-to-end: threaded fleet with observability (TSan workout) ---

TEST(FleetMonitorObs, ThreadedFleetRecordsAndExports) {
  std::vector<std::unique_ptr<os::System>> hosts;
  for (int i = 0; i < 4; ++i) hosts.push_back(obs_test_host());

  std::ostringstream metrics_out;  // Outlives the fleet (final flush at stop).
  FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kThreaded;
  options.workers = 4;
  options.with_observability = true;
  FleetMonitor fleet(options);
  ASSERT_NE(fleet.observability(), nullptr);

  for (auto& host : hosts) {
    PipelineSpec spec;
    spec.model = obs_test_model();
    spec.period = util::ms_to_ns(100);
    fleet.add_host(*host, spec);
  }
  fleet.add_metrics_reporter(metrics_out, MetricsReporter::Format::kText,
                             /*every_n_ticks=*/10);

  // Snapshot concurrently with the run: the registry must stay coherent
  // while every stage records (this is the TSan-sensitive path).
  std::atomic<bool> stop{false};
  std::thread snapshotter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const obs::MetricsSnapshot snap = fleet.observability()->metrics.snapshot();
      (void)snap.value_of("pipeline.ticks");
      std::this_thread::yield();
    }
  });
  fleet.run_for(util::seconds_to_ns(2));
  fleet.finish();
  stop.store(true);
  snapshotter.join();

  const obs::MetricsSnapshot snap = fleet.observability()->metrics.snapshot();
  // 4 hosts x 20 ticks each.
  EXPECT_EQ(snap.value_of("pipeline.ticks"), 80.0);
  EXPECT_GT(snap.value_of("pipeline.aggregated_rows"), 0.0);
  EXPECT_GT(snap.value_of("actors.messages_processed"), 0.0);
  EXPECT_GE(snap.value_of("self.cpu_seconds"), 0.0);

  EXPECT_NE(metrics_out.str().find("# metrics snapshot"), std::string::npos);

  std::ostringstream trace_json;
  fleet.write_chrome_trace(trace_json);
  EXPECT_TRUE(JsonReader(trace_json.str()).valid());
  // Namespaced stage spans from different hosts are present.
  EXPECT_NE(trace_json.str().find("h0/"), std::string::npos);
  EXPECT_NE(trace_json.str().find("h3/"), std::string::npos);
}

}  // namespace
}  // namespace powerapi::api
