// Unit and property tests for the regression toolkit: matrices, QR/OLS,
// ridge, NNLS, correlation, feature selection and cross-validation.
#include <gtest/gtest.h>

#include <cmath>

#include "mathx/correlation.h"
#include "mathx/crossval.h"
#include "mathx/feature_selection.h"
#include "mathx/incremental_ols.h"
#include "mathx/matrix.h"
#include "mathx/ols.h"
#include "util/rng.h"

namespace powerapi::mathx {
namespace {

// --- Matrix ---

TEST(Matrix, ConstructionAndAccess) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6);
  EXPECT_THROW(m(2, 0), std::out_of_range);
  EXPECT_THROW(Matrix({{1, 2}, {3}}), std::invalid_argument);
}

TEST(Matrix, MultiplyKnown) {
  const Matrix a{{1, 2}, {3, 4}};
  const Matrix b{{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19);
  EXPECT_DOUBLE_EQ(c(0, 1), 22);
  EXPECT_DOUBLE_EQ(c(1, 0), 43);
  EXPECT_DOUBLE_EQ(c(1, 1), 50);
  EXPECT_THROW(a * Matrix(3, 3), std::invalid_argument);
}

TEST(Matrix, TransposeIdentitySelect) {
  const Matrix a{{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6);
  const Matrix id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ((a * id).max_abs_diff(a), 0.0);
  const std::vector<std::size_t> keep = {2, 0};
  const Matrix sel = a.select_columns(keep);
  EXPECT_DOUBLE_EQ(sel(0, 0), 3);
  EXPECT_DOUBLE_EQ(sel(1, 1), 4);
}

TEST(Matrix, AppendRowGrows) {
  Matrix m;
  const std::vector<double> r1 = {1, 2};
  const std::vector<double> r2 = {3, 4};
  m.append_row(r1);
  m.append_row(r2);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  const std::vector<double> bad = {1, 2, 3};
  EXPECT_THROW(m.append_row(bad), std::invalid_argument);
}

TEST(Matrix, VectorMultiplyAndNorm) {
  const Matrix a{{1, 0}, {0, 2}, {3, 3}};
  const std::vector<double> x = {2, 1};
  const auto y = a.multiply(x);
  EXPECT_EQ(y, (std::vector<double>{2, 2, 9}));
  EXPECT_NEAR(Matrix({{3, 4}}).frobenius_norm(), 5.0, 1e-12);
}

// --- OLS / QR ---

TEST(Ols, RecoversExactSolution) {
  // y = 2*x1 + 3*x2 exactly.
  Matrix a{{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  const std::vector<double> b = {2, 3, 5, 7};
  const auto fit = ols(a, b);
  ASSERT_EQ(fit.coefficients.size(), 2u);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-10);
  EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-10);
  EXPECT_NEAR(fit.residual_norm, 0.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Ols, RejectsBadShapes) {
  Matrix a{{1, 2}};
  const std::vector<double> b = {1};
  EXPECT_THROW(ols(a, b), std::invalid_argument);  // Underdetermined.
  Matrix zero(4, 1, 0.0);
  const std::vector<double> b4 = {1, 2, 3, 4};
  EXPECT_THROW(ols(zero, b4), std::runtime_error);  // Rank deficient.
}

class OlsRecoveryProperty : public ::testing::TestWithParam<int> {};

TEST_P(OlsRecoveryProperty, RecoversPlantedCoefficientsUnderNoise) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 3);
  const std::size_t n = 200;
  const std::size_t k = 4;
  std::vector<double> truth;
  for (std::size_t j = 0; j < k; ++j) truth.push_back(rng.uniform(0.5, 5.0));

  Matrix a(n, k);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    double y = 0;
    for (std::size_t j = 0; j < k; ++j) {
      a(i, j) = rng.uniform(0, 10);
      y += truth[j] * a(i, j);
    }
    b[i] = y + rng.gaussian(0.0, 0.01);
  }
  const auto fit = ols(a, b);
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_NEAR(fit.coefficients[j], truth[j], 0.02) << "coefficient " << j;
  }
  EXPECT_GT(fit.r_squared, 0.999);
}
INSTANTIATE_TEST_SUITE_P(Seeds, OlsRecoveryProperty, ::testing::Range(1, 9));

TEST(Ridge, ShrinksTowardZero) {
  util::Rng rng(5);
  Matrix a(50, 2);
  std::vector<double> b(50);
  for (std::size_t i = 0; i < 50; ++i) {
    a(i, 0) = rng.uniform(0, 1);
    a(i, 1) = rng.uniform(0, 1);
    b[i] = 3 * a(i, 0) + 4 * a(i, 1) + rng.gaussian(0, 0.05);
  }
  const auto plain = ols(a, b);
  const auto shrunk = ridge(a, b, 100.0);
  const double norm_plain = std::abs(plain.coefficients[0]) + std::abs(plain.coefficients[1]);
  const double norm_shrunk =
      std::abs(shrunk.coefficients[0]) + std::abs(shrunk.coefficients[1]);
  EXPECT_LT(norm_shrunk, norm_plain);
  EXPECT_THROW(ridge(a, b, -1.0), std::invalid_argument);
  // lambda = 0 degrades to OLS.
  const auto zero = ridge(a, b, 0.0);
  EXPECT_NEAR(zero.coefficients[0], plain.coefficients[0], 1e-12);
}

TEST(Nnls, ClampsNegativeCoefficients) {
  // Target anti-correlates with the second column: unconstrained OLS would
  // give it a negative weight; NNLS must zero it.
  util::Rng rng(9);
  Matrix a(100, 2);
  std::vector<double> b(100);
  for (std::size_t i = 0; i < 100; ++i) {
    a(i, 0) = rng.uniform(0, 10);
    a(i, 1) = rng.uniform(0, 10);
    b[i] = 2.0 * a(i, 0) - 0.5 * a(i, 1) + rng.gaussian(0, 0.01);
  }
  const auto fit = nnls(a, b);
  EXPECT_GE(fit.coefficients[0], 0.0);
  EXPECT_DOUBLE_EQ(fit.coefficients[1], 0.0);
  // With x1 clamped out, the no-intercept projection of y on x0 alone is
  // 2 − 0.5·E[x0·x1]/E[x0²] ≈ 1.625 for iid U(0,10) regressors.
  EXPECT_NEAR(fit.coefficients[0], 1.625, 0.15);
}

TEST(Nnls, AgreesWithOlsWhenAllPositive) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  const std::vector<double> b = {2, 3, 5, 7};
  const auto constrained = nnls(a, b);
  const auto plain = ols(a, b);
  EXPECT_NEAR(constrained.coefficients[0], plain.coefficients[0], 1e-9);
  EXPECT_NEAR(constrained.coefficients[1], plain.coefficients[1], 1e-9);
}

TEST(WithIntercept, PrependsOnes) {
  const Matrix a{{2}, {3}};
  const Matrix x = with_intercept(a);
  EXPECT_EQ(x.cols(), 2u);
  EXPECT_DOUBLE_EQ(x(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(x(1, 1), 3.0);
}

TEST(RSquared, ZeroForMeanPredictor) {
  const std::vector<double> obs = {1, 2, 3, 4};
  const std::vector<double> mean_pred = {2.5, 2.5, 2.5, 2.5};
  EXPECT_NEAR(r_squared(obs, mean_pred), 0.0, 1e-12);
}

// --- Incremental OLS ---

// Feeds every row of `a`/`b` into a fresh accumulator.
IncrementalOls absorb(const Matrix& a, const std::vector<double>& b) {
  IncrementalOls inc(a.cols());
  std::vector<double> row(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) row[j] = a(i, j);
    inc.add(row, b[i]);
  }
  return inc;
}

TEST(IncrementalOls, MatchesBatchOnExactSystem) {
  Matrix a{{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  const std::vector<double> b = {2, 3, 5, 7};
  const auto batch = ols(a, b);
  const auto streaming = absorb(a, b).solve();
  ASSERT_EQ(streaming.coefficients.size(), batch.coefficients.size());
  for (std::size_t j = 0; j < batch.coefficients.size(); ++j) {
    EXPECT_NEAR(streaming.coefficients[j], batch.coefficients[j], 1e-9);
  }
  EXPECT_NEAR(streaming.residual_norm, batch.residual_norm, 1e-9);
  EXPECT_NEAR(streaming.r_squared, batch.r_squared, 1e-9);
}

class IncrementalOlsEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(IncrementalOlsEquivalence, MatchesBatchOnRandomSamples) {
  util::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const std::size_t k = 1 + static_cast<std::size_t>(GetParam()) % 5;
  const std::size_t n = k + 1 + static_cast<std::size_t>(rng.uniform(0, 60));

  Matrix a(n, k);
  std::vector<double> b(n);
  for (std::size_t i = 0; i < n; ++i) {
    double y = rng.gaussian(0.0, 0.5);
    for (std::size_t j = 0; j < k; ++j) {
      // Spread magnitudes across decades, like counter rates do (cycles/s
      // ~1e9 next to cache-misses/s ~1e5).
      a(i, j) = rng.uniform(0, 1) * std::pow(10.0, static_cast<double>(j % 4));
      y += (1.0 + static_cast<double>(j)) * a(i, j);
    }
    b[i] = y;
  }

  const auto batch = ols(a, b);
  const auto streaming = absorb(a, b).solve();
  for (std::size_t j = 0; j < k; ++j) {
    EXPECT_NEAR(streaming.coefficients[j], batch.coefficients[j],
                1e-9 * (1.0 + std::abs(batch.coefficients[j])))
        << "coefficient " << j << " (k=" << k << ", n=" << n << ")";
  }
  EXPECT_NEAR(streaming.residual_norm, batch.residual_norm,
              1e-9 * (1.0 + batch.residual_norm));
  EXPECT_NEAR(streaming.r_squared, batch.r_squared, 1e-9);
}
INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalOlsEquivalence, ::testing::Range(1, 17));

TEST(IncrementalOls, MatchesNnlsWhenClampingIsNeeded) {
  util::Rng rng(9);  // Same construction as Nnls.ClampsNegativeCoefficients.
  Matrix a(100, 2);
  std::vector<double> b(100);
  for (std::size_t i = 0; i < 100; ++i) {
    a(i, 0) = rng.uniform(0, 10);
    a(i, 1) = rng.uniform(0, 10);
    b[i] = 2.0 * a(i, 0) - 0.5 * a(i, 1) + rng.gaussian(0, 0.01);
  }
  const auto batch = nnls(a, b);
  const auto streaming = absorb(a, b).solve_nonnegative();
  ASSERT_EQ(streaming.coefficients.size(), 2u);
  EXPECT_DOUBLE_EQ(streaming.coefficients[1], 0.0);
  EXPECT_NEAR(streaming.coefficients[0], batch.coefficients[0], 1e-8);
}

TEST(IncrementalOls, RejectsDegenerateSystemsLikeBatch) {
  // Underdetermined: fewer rows than columns.
  {
    IncrementalOls inc(2);
    const std::vector<double> row = {1.0, 2.0};
    inc.add(row, 1.0);
    EXPECT_FALSE(inc.well_determined());
    EXPECT_THROW(inc.solve(), std::invalid_argument);
  }
  // Rank deficient: an all-zero column (batch throws runtime_error too).
  {
    Matrix zero(4, 1, 0.0);
    const std::vector<double> b4 = {1, 2, 3, 4};
    EXPECT_THROW(ols(zero, b4), std::runtime_error);
    const auto inc = absorb(zero, b4);
    EXPECT_FALSE(inc.well_determined());
    EXPECT_THROW(inc.solve(), std::runtime_error);
  }
  // Collinear grid: column 1 is exactly 3× column 0 — the shape a pinned
  // stress sweep produces when two counter rates move in lockstep.
  {
    Matrix collinear(6, 2);
    std::vector<double> y(6);
    for (std::size_t i = 0; i < 6; ++i) {
      collinear(i, 0) = static_cast<double>(i + 1);
      collinear(i, 1) = 3.0 * collinear(i, 0);
      y[i] = collinear(i, 0);
    }
    EXPECT_THROW(ols(collinear, y), std::runtime_error);
    const auto inc = absorb(collinear, y);
    EXPECT_FALSE(inc.well_determined());
    EXPECT_THROW(inc.solve(), std::runtime_error);
  }
}

TEST(IncrementalOls, WellDeterminedFlipsOnceRankIsReached) {
  IncrementalOls inc(2);
  const std::vector<double> r1 = {1.0, 0.0};
  const std::vector<double> r2 = {0.0, 1.0};
  inc.add(r1, 1.0);
  EXPECT_FALSE(inc.well_determined());
  inc.add(r2, 2.0);
  EXPECT_TRUE(inc.well_determined());
  const auto fit = inc.solve();
  EXPECT_NEAR(fit.coefficients[0], 1.0, 1e-12);
  EXPECT_NEAR(fit.coefficients[1], 2.0, 1e-12);
}

TEST(IncrementalOls, ForgettingTracksDriftingCoefficients) {
  // The generating coefficient jumps mid-stream; with λ < 1 the solution
  // must land near the NEW coefficient, while λ = 1 averages the epochs.
  util::Rng rng(41);
  IncrementalOls decayed(1);
  decayed.set_forgetting(0.9);
  IncrementalOls flat(1);
  std::vector<double> row(1);
  for (int i = 0; i < 200; ++i) {
    row[0] = rng.uniform(1, 10);
    const double coeff = i < 100 ? 2.0 : 5.0;
    const double y = coeff * row[0];
    decayed.add(row, y);
    flat.add(row, y);
  }
  EXPECT_NEAR(decayed.solve().coefficients[0], 5.0, 0.01);
  const double averaged = flat.solve().coefficients[0];
  EXPECT_GT(averaged, 2.5);
  EXPECT_LT(averaged, 4.5);
  EXPECT_THROW(decayed.set_forgetting(0.0), std::invalid_argument);
  EXPECT_THROW(decayed.set_forgetting(1.5), std::invalid_argument);
}

TEST(IncrementalOls, ClearResetsState) {
  IncrementalOls inc(1);
  const std::vector<double> row = {2.0};
  inc.add(row, 4.0);
  inc.clear();
  EXPECT_EQ(inc.count(), 0u);
  EXPECT_FALSE(inc.well_determined());
  inc.add(row, 6.0);
  EXPECT_NEAR(inc.solve().coefficients[0], 3.0, 1e-12);
}

// --- Correlation ---

TEST(Correlation, PerfectLinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(x, y), 1.0, 1e-12);
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  std::vector<double> neg(y.rbegin(), y.rend());
  EXPECT_NEAR(pearson(x, neg), -1.0, 1e-12);
  EXPECT_NEAR(spearman(x, neg), -1.0, 1e-12);
}

TEST(Correlation, SpearmanInvariantToMonotoneTransform) {
  util::Rng rng(3);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double v = rng.uniform(0.1, 10.0);
    x.push_back(v);
    y.push_back(std::exp(v) + 0.0);  // Monotone but very nonlinear.
  }
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
  EXPECT_LT(pearson(x, y), 0.9);  // Pearson penalizes the nonlinearity.
}

TEST(Correlation, HandlesTiesViaAverageRanks) {
  const std::vector<double> x = {1, 2, 2, 3};
  const auto ranks = fractional_ranks(x);
  EXPECT_DOUBLE_EQ(ranks[0], 1.0);
  EXPECT_DOUBLE_EQ(ranks[1], 2.5);
  EXPECT_DOUBLE_EQ(ranks[2], 2.5);
  EXPECT_DOUBLE_EQ(ranks[3], 4.0);
}

TEST(Correlation, ZeroVarianceIsZero) {
  const std::vector<double> flat = {5, 5, 5};
  const std::vector<double> y = {1, 2, 3};
  EXPECT_DOUBLE_EQ(pearson(flat, y), 0.0);
  const std::vector<double> a = {1};
  EXPECT_THROW(pearson(a, a), std::invalid_argument);
}

// --- Feature selection ---

TEST(FeatureSelection, RanksByAbsoluteCorrelation) {
  util::Rng rng(21);
  Matrix design(300, 3);
  std::vector<double> target(300);
  for (std::size_t i = 0; i < 300; ++i) {
    design(i, 0) = rng.uniform(0, 1);            // Noise.
    design(i, 1) = rng.uniform(0, 1);            // Strong driver.
    design(i, 2) = rng.uniform(0, 1);            // Weak driver.
    target[i] = 10 * design(i, 1) + design(i, 2) + rng.gaussian(0, 0.1);
  }
  const std::vector<std::string> names = {"noise", "strong", "weak"};
  const auto ranked = rank_features(design, target, names, CorrelationKind::kSpearman);
  EXPECT_EQ(ranked[0].name, "strong");
  EXPECT_EQ(ranked[2].name, "noise");
}

TEST(FeatureSelection, DropsRedundantFeatures) {
  util::Rng rng(22);
  Matrix design(300, 3);
  std::vector<double> target(300);
  for (std::size_t i = 0; i < 300; ++i) {
    const double base = rng.uniform(0, 1);
    design(i, 0) = base;
    design(i, 1) = base * 2.0 + rng.gaussian(0, 1e-4);  // Near-duplicate of 0.
    design(i, 2) = rng.uniform(0, 1);
    target[i] = 5 * base + 2 * design(i, 2);
  }
  SelectionOptions options;
  options.max_features = 3;
  options.min_abs_correlation = 0.1;
  const auto picked = select_features(design, target, {}, options);
  ASSERT_EQ(picked.size(), 2u);  // One of the twins must be dropped.
  // Columns 0 and 1 are interchangeable (near-identical correlation); the
  // survivor plus the independent column 2 must be kept.
  EXPECT_TRUE(picked[0].column == 0u || picked[0].column == 1u);
  EXPECT_EQ(picked[1].column, 2u);
}

TEST(FeatureSelection, RespectsMaxFeaturesAndThreshold) {
  util::Rng rng(23);
  Matrix design(200, 4);
  std::vector<double> target(200);
  for (std::size_t i = 0; i < 200; ++i) {
    for (std::size_t c = 0; c < 4; ++c) design(i, c) = rng.uniform(0, 1);
    target[i] = design(i, 0) + 0.8 * design(i, 1) + 0.6 * design(i, 2);
  }
  SelectionOptions options;
  options.max_features = 2;
  const auto picked = select_features(design, target, {}, options);
  EXPECT_LE(picked.size(), 2u);
}

// --- Cross-validation ---

TEST(CrossVal, FoldsPartitionRows) {
  util::Rng rng(31);
  const auto folds = make_folds(25, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::vector<int> seen(25, 0);
  for (const auto& fold : folds) {
    EXPECT_EQ(fold.train.size() + fold.validate.size(), 25u);
    for (std::size_t r : fold.validate) seen[r]++;
  }
  for (int count : seen) EXPECT_EQ(count, 1);
  EXPECT_THROW(make_folds(3, 1, rng), std::invalid_argument);
  EXPECT_THROW(make_folds(3, 4, rng), std::invalid_argument);
}

TEST(CrossVal, LowErrorOnLinearData) {
  util::Rng rng(32);
  Matrix design(120, 2);
  std::vector<double> target(120);
  for (std::size_t i = 0; i < 120; ++i) {
    design(i, 0) = rng.uniform(0, 5);
    design(i, 1) = rng.uniform(0, 5);
    target[i] = 2 * design(i, 0) + design(i, 1) + rng.gaussian(0, 0.05);
  }
  const auto result = cross_validate(
      design, target, 4, rng, [](const Matrix& x, std::span<const double> y) {
        const auto fit = ols(x, y);
        return [coeffs = fit.coefficients](std::span<const double> row) {
          double out = 0;
          for (std::size_t i = 0; i < coeffs.size(); ++i) out += coeffs[i] * row[i];
          return out;
        };
      });
  EXPECT_EQ(result.fold_rmse.size(), 4u);
  EXPECT_LT(result.mean_rmse, 0.1);
}

}  // namespace
}  // namespace powerapi::mathx
