// Tests for the CPU simulator: specs, DVFS, C-states, cache model and the
// machine's counter/power semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "simcpu/cache.h"
#include "simcpu/cpu_spec.h"
#include "simcpu/cstates.h"
#include "simcpu/dvfs.h"
#include "simcpu/machine.h"
#include "workloads/stress.h"

namespace powerapi::simcpu {
namespace {

using util::ms_to_ns;

// --- CpuSpec ---

TEST(CpuSpec, I3MatchesPaperTable1) {
  const CpuSpec spec = i3_2120();
  EXPECT_EQ(spec.vendor, "Intel");
  EXPECT_EQ(spec.cores, 2u);
  EXPECT_EQ(spec.hw_threads(), 4u);
  EXPECT_TRUE(spec.smt());
  EXPECT_TRUE(spec.speedstep);
  EXPECT_FALSE(spec.turbo_boost);
  EXPECT_TRUE(spec.c_states);
  EXPECT_DOUBLE_EQ(spec.tdp_watts, 65.0);
  EXPECT_DOUBLE_EQ(spec.max_frequency_hz(), 3.3e9);
  EXPECT_DOUBLE_EQ(spec.min_frequency_hz(), 1.6e9);
  EXPECT_EQ(spec.frequencies_hz.size(), 10u);
}

TEST(CpuSpec, VariantsAreConsistent) {
  EXPECT_FALSE(i3_2120_no_smt().smt());
  EXPECT_EQ(i3_2120_no_smt().hw_threads(), 2u);
  EXPECT_EQ(quad_core().cores, 4u);
  EXPECT_EQ(quad_core().hw_threads(), 8u);
}

TEST(CpuSpec, FrequencyLookup) {
  const CpuSpec spec = i3_2120();
  EXPECT_DOUBLE_EQ(spec.closest_frequency_hz(1.7e9), 1.6e9);
  EXPECT_DOUBLE_EQ(spec.closest_frequency_hz(5e9), 3.3e9);
  EXPECT_EQ(spec.frequency_index(3.3e9), 9u);
  EXPECT_THROW(spec.frequency_index(2.5e9), std::invalid_argument);
}

TEST(CpuSpec, ValidateCatchesBadSpecs) {
  CpuSpec spec = i3_2120();
  spec.cores = 0;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = i3_2120();
  spec.frequencies_hz = {3e9, 2e9};  // Descending.
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = i3_2120();
  for (auto& c : spec.caches) c.shared = false;  // No LLC.
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = i3_2120();
  spec.threads_per_core = 3;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(CpuSpec, DescribeMentionsKeyFields) {
  const std::string text = i3_2120().describe();
  EXPECT_NE(text.find("Core i3-2120"), std::string::npos);
  EXPECT_NE(text.find("2 cores / 4 threads"), std::string::npos);
  EXPECT_NE(text.find("65"), std::string::npos);
}

// --- VoltageTable ---

TEST(VoltageTable, EndpointsAndMonotonicity) {
  const CpuSpec spec = i3_2120();
  const VoltageTable table(spec, 0.85, 1.10);
  EXPECT_DOUBLE_EQ(table.voltage_at(1.6e9), 0.85);
  EXPECT_DOUBLE_EQ(table.voltage_at(3.3e9), 1.10);
  double prev = 0.0;
  for (const double f : spec.frequencies_hz) {
    const double v = table.voltage_at(f);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(VoltageTable, ScalesAreNormalizedAtMax) {
  const VoltageTable table(i3_2120());
  EXPECT_NEAR(table.dynamic_scale(3.3e9), 1.0, 1e-12);
  EXPECT_NEAR(table.static_scale(3.3e9), 1.0, 1e-12);
  EXPECT_LT(table.dynamic_scale(1.6e9), 0.35);  // V²f drops superlinearly.
  EXPECT_GT(table.dynamic_scale(1.6e9), 0.2);
  EXPECT_THROW(VoltageTable(i3_2120(), -1, 1), std::invalid_argument);
}

// --- C-states ---

TEST(CState, DescendsWithIdleTime) {
  CStateParams params;
  CoreCState core(params);
  EXPECT_EQ(core.state(), CState::kC0);
  core.advance(params.c1_after_ns, /*busy=*/false);
  EXPECT_EQ(core.state(), CState::kC1);
  core.advance(params.c3_after_ns, false);
  EXPECT_EQ(core.state(), CState::kC3);
  core.advance(params.c6_after_ns, false);
  EXPECT_EQ(core.state(), CState::kC6);
  // Waking returns to C0 and costs the C6 wake energy.
  const double wake = core.advance(ms_to_ns(1), /*busy=*/true);
  EXPECT_EQ(core.state(), CState::kC0);
  EXPECT_DOUBLE_EQ(wake, params.c6_wake_joules);
}

TEST(CState, DeeperStatesBurnLess) {
  CStateParams params;
  CoreCState shallow(params);
  CoreCState deep(params);
  // Park "deep" in C6 first.
  deep.advance(params.c6_after_ns, false);
  const double e_shallow = shallow.advance(ms_to_ns(10), false);
  const double e_deep = deep.advance(ms_to_ns(10), false);
  EXPECT_GT(e_shallow, e_deep);
}

TEST(CState, DisabledStaysAtC0) {
  CStateParams params;
  params.enabled = false;
  CoreCState core(params);
  core.advance(util::seconds_to_ns(10), false);
  EXPECT_EQ(core.state(), CState::kC0);
}

TEST(CState, ToStringCovers) {
  EXPECT_STREQ(to_string(CState::kC0), "C0");
  EXPECT_STREQ(to_string(CState::kC6), "C6");
}

// --- Cache model ---

TEST(Cache, SmallWorkingSetHitsIntrinsicRatio) {
  const CpuSpec spec = i3_2120();
  CacheHierarchy cache(spec, 4);
  std::vector<CacheDemand> demands(4);
  demands[0].active = true;
  demands[0].working_set_bytes = 64 * 1024;  // Fits private L2.
  demands[0].llc_refs_per_sec = 1e7;
  demands[0].intrinsic_miss_ratio = 0.05;
  std::vector<CacheShare> shares;
  for (int i = 0; i < 50; ++i) shares = cache.tick(demands, ms_to_ns(1));
  EXPECT_NEAR(shares[0].miss_ratio, 0.05, 1e-6);
}

TEST(Cache, OversizedWorkingSetMissesMore) {
  const CpuSpec spec = i3_2120();
  CacheHierarchy cache(spec, 4);
  std::vector<CacheDemand> demands(4);
  demands[0].active = true;
  demands[0].working_set_bytes = 32.0 * 1024 * 1024;  // 10x the LLC.
  demands[0].llc_refs_per_sec = 1e8;
  demands[0].intrinsic_miss_ratio = 0.05;
  std::vector<CacheShare> shares;
  for (int i = 0; i < 200; ++i) shares = cache.tick(demands, ms_to_ns(1));
  EXPECT_GT(shares[0].miss_ratio, 0.5);
}

TEST(Cache, ContentionShrinksShares) {
  const CpuSpec spec = i3_2120();
  CacheHierarchy alone(spec, 4);
  CacheHierarchy contended(spec, 4);
  std::vector<CacheDemand> one(4);
  one[0].active = true;
  one[0].working_set_bytes = 2.5 * 1024 * 1024;
  one[0].llc_refs_per_sec = 1e8;
  one[0].intrinsic_miss_ratio = 0.02;

  std::vector<CacheDemand> four = one;
  for (int i = 1; i < 4; ++i) four[static_cast<std::size_t>(i)] = one[0];

  std::vector<CacheShare> shares_alone;
  std::vector<CacheShare> shares_contended;
  for (int i = 0; i < 200; ++i) {
    shares_alone = alone.tick(one, ms_to_ns(1));
    shares_contended = contended.tick(four, ms_to_ns(1));
  }
  EXPECT_GT(shares_alone[0].llc_share_bytes, shares_contended[0].llc_share_bytes);
  EXPECT_LT(shares_alone[0].miss_ratio, shares_contended[0].miss_ratio);
}

TEST(Cache, WarmupTransientDecaysMisses) {
  const CpuSpec spec = i3_2120();
  CacheHierarchy cache(spec, 4);
  std::vector<CacheDemand> demands(4);
  demands[0].active = true;
  demands[0].working_set_bytes = 2.0 * 1024 * 1024;  // Fits the LLC.
  demands[0].llc_refs_per_sec = 1e8;
  demands[0].intrinsic_miss_ratio = 0.01;
  const auto first = cache.tick(demands, ms_to_ns(1));
  std::vector<CacheShare> warm;
  for (int i = 0; i < 300; ++i) warm = cache.tick(demands, ms_to_ns(1));
  EXPECT_GT(first[0].miss_ratio, warm[0].miss_ratio);
  EXPECT_NEAR(warm[0].miss_ratio, 0.01, 0.02);
}

// --- Machine ---

std::vector<ThreadWork> all_active(const CpuSpec& spec, const ExecProfile& profile) {
  std::vector<ThreadWork> work(spec.hw_threads());
  for (std::size_t i = 0; i < work.size(); ++i) {
    work[i].active = true;
    work[i].task_id = static_cast<std::int64_t>(i);
    work[i].profile = profile;
  }
  return work;
}

std::vector<ThreadWork> all_idle(const CpuSpec& spec) {
  return std::vector<ThreadWork>(spec.hw_threads());
}

TEST(Machine, CountersAreMonotonicAndConsistent) {
  Machine machine(i3_2120());
  const auto work = all_active(machine.spec(), workloads::cpu_stress());
  CounterBlock prev;
  for (int i = 0; i < 20; ++i) {
    machine.tick(work, ms_to_ns(1));
    const auto& cur = machine.machine_counters();
    EXPECT_GE(cur.instructions, prev.instructions);
    EXPECT_GE(cur.cycles, prev.cycles);
    EXPECT_GE(cur.cache_references, cur.cache_misses);  // Misses ⊆ references.
    prev = cur;
  }
  EXPECT_GT(prev.instructions, 0u);
  // Machine counters equal the sum of per-thread counters.
  CounterBlock sum;
  for (std::size_t i = 0; i < machine.spec().hw_threads(); ++i) {
    sum += machine.thread_counters(i);
  }
  EXPECT_EQ(sum, machine.machine_counters());
}

TEST(Machine, IdlePowerNearCalibratedFloor) {
  Machine machine(i3_2120());
  const auto idle = all_idle(machine.spec());
  // First tick: cores still in C0 — the paper's idle constant regime.
  const auto result = machine.tick(idle, ms_to_ns(1));
  const GroundTruthParams gt;
  EXPECT_NEAR(result.power.total(),
              gt.platform_watts + 2 * gt.cstates.c0_idle_watts, 0.5);
  // After long idling the package drops below that floor (C6).
  TickResult later;
  for (int i = 0; i < 100; ++i) later = machine.tick(idle, ms_to_ns(1));
  EXPECT_LT(later.power.total(), result.power.total());
  EXPECT_EQ(machine.core_cstate(0), CState::kC6);
}

TEST(Machine, PowerGrowsWithFrequency) {
  const auto spec = i3_2120();
  double prev_power = 0.0;
  for (const double hz : spec.frequencies_hz) {
    Machine machine(spec);
    machine.set_frequency(hz);
    const auto work = all_active(spec, workloads::cpu_stress());
    TickResult result;
    for (int i = 0; i < 10; ++i) result = machine.tick(work, ms_to_ns(1));
    EXPECT_GT(result.power.total(), prev_power) << "at " << hz;
    prev_power = result.power.total();
  }
}

TEST(Machine, InstructionsScaleWithFrequency) {
  const auto spec = i3_2120();
  Machine slow(spec);
  Machine fast(spec);
  slow.set_frequency(1.6e9);
  fast.set_frequency(3.3e9);
  const auto work = all_active(spec, workloads::cpu_stress());
  for (int i = 0; i < 10; ++i) {
    slow.tick(work, ms_to_ns(1));
    fast.tick(work, ms_to_ns(1));
  }
  const double ratio = static_cast<double>(fast.machine_counters().instructions) /
                       static_cast<double>(slow.machine_counters().instructions);
  EXPECT_NEAR(ratio, 3.3 / 1.6, 0.1);  // ALU code scales ~linearly with clock.
}

TEST(Machine, SmtSharingReducesPerThreadThroughput) {
  const auto spec = i3_2120();
  Machine machine(spec);
  // One thread alone on core 0.
  std::vector<ThreadWork> solo(spec.hw_threads());
  solo[0].active = true;
  solo[0].task_id = 1;
  solo[0].profile = workloads::cpu_stress();
  const auto r_solo = machine.tick(solo, ms_to_ns(1));

  // Both hyperthreads of core 0 busy.
  std::vector<ThreadWork> pair = solo;
  pair[1].active = true;
  pair[1].task_id = 2;
  pair[1].profile = workloads::cpu_stress();
  const auto r_pair = machine.tick(pair, ms_to_ns(1));

  const double alone = static_cast<double>(r_solo.threads[0].delta.instructions);
  const double shared = static_cast<double>(r_pair.threads[0].delta.instructions);
  EXPECT_LT(shared, alone);
  EXPECT_GT(shared, 0.5 * alone);  // But more than half: SMT gains throughput.
  const double combined = shared + static_cast<double>(r_pair.threads[1].delta.instructions);
  EXPECT_GT(combined, alone);
  // Co-residency is recorded for the HT-aware model.
  EXPECT_EQ(r_pair.threads[0].delta.smt_shared_cycles, r_pair.threads[0].delta.cycles);
  EXPECT_EQ(r_solo.threads[0].delta.smt_shared_cycles, 0u);
}

TEST(Machine, SmtSharingIsEnergyEfficient) {
  const auto spec = i3_2120();
  // Same total demand placed as 2 threads on one core vs 2 cores.
  Machine packed(spec);
  Machine spread(spec);
  std::vector<ThreadWork> pack_work(spec.hw_threads());
  pack_work[0] = {true, 1, workloads::cpu_stress()};
  pack_work[1] = {true, 2, workloads::cpu_stress()};
  std::vector<ThreadWork> spread_work(spec.hw_threads());
  spread_work[0] = {true, 1, workloads::cpu_stress()};
  spread_work[2] = {true, 2, workloads::cpu_stress()};

  double packed_joules = 0;
  double spread_joules = 0;
  std::uint64_t packed_instr = 0;
  std::uint64_t spread_instr = 0;
  for (int i = 0; i < 50; ++i) {
    packed_joules += packed.tick(pack_work, ms_to_ns(1)).energy_joules;
    spread_joules += spread.tick(spread_work, ms_to_ns(1)).energy_joules;
  }
  packed_instr = packed.machine_counters().instructions;
  spread_instr = spread.machine_counters().instructions;
  // Spread finishes more work but burns more machine power (two cores awake).
  EXPECT_GT(spread_instr, packed_instr);
  EXPECT_GT(spread_joules, packed_joules);
}

TEST(Machine, EnergyIntegratesPower) {
  Machine machine(i3_2120());
  const auto work = all_active(machine.spec(), workloads::memory_stress(8e6));
  double sum = 0.0;
  for (int i = 0; i < 25; ++i) {
    const auto r = machine.tick(work, ms_to_ns(2));
    EXPECT_NEAR(r.energy_joules, r.power.total() * 0.002, 1e-9);
    sum += r.energy_joules;
  }
  EXPECT_NEAR(machine.total_energy_joules(), sum, 1e-9);
  EXPECT_LT(machine.package_energy_joules(), machine.total_energy_joules());
  EXPECT_GT(machine.package_energy_joules(), 0.0);
}

TEST(Machine, BreakdownComponentsSumToTotal) {
  Machine machine(i3_2120());
  const auto work = all_active(machine.spec(), workloads::memory_stress(32e6));
  const auto r = machine.tick(work, ms_to_ns(1));
  const auto& pb = r.power;
  EXPECT_NEAR(pb.total(), pb.platform + pb.cpu_idle + pb.cpu_dynamic + pb.uncore + pb.dram,
              1e-12);
  EXPECT_GT(pb.cpu_dynamic, 0.0);
  EXPECT_GT(pb.dram, 0.0);
  EXPECT_GT(pb.uncore, 0.0);
}

TEST(Machine, AttributionIsBoundedByMachineEnergy) {
  Machine machine(i3_2120());
  const auto work = all_active(machine.spec(), workloads::mixed_stress(0.5, 8e6));
  double attributed = 0.0;
  double total = 0.0;
  for (int i = 0; i < 50; ++i) {
    const auto r = machine.tick(work, ms_to_ns(1));
    for (const auto& t : r.threads) attributed += t.attributed_joules;
    total += r.energy_joules;
  }
  EXPECT_GT(attributed, 0.0);
  EXPECT_LT(attributed, total);  // Platform + idle overhead is unattributed.
}

TEST(Machine, FrequencySnapsToLadder) {
  Machine machine(i3_2120());
  EXPECT_DOUBLE_EQ(machine.set_frequency(2.51e9), 2.6e9);
  EXPECT_DOUBLE_EQ(machine.frequency(), 2.6e9);
  EXPECT_DOUBLE_EQ(machine.set_frequency(0.1e9), 1.6e9);
}

TEST(Machine, RejectsBadTickArguments) {
  Machine machine(i3_2120());
  std::vector<ThreadWork> wrong(2);  // Needs 4 slots.
  EXPECT_THROW(machine.tick(wrong, ms_to_ns(1)), std::invalid_argument);
  std::vector<ThreadWork> right(4);
  EXPECT_THROW(machine.tick(right, 0), std::invalid_argument);
}

TEST(Machine, HigherEnergyScaleBurnsMore) {
  const auto spec = i3_2120();
  Machine light(spec);
  Machine heavy(spec);
  auto profile = workloads::cpu_stress();
  profile.instruction_energy_scale = 1.0;
  const auto light_work = all_active(spec, profile);
  profile.instruction_energy_scale = 1.8;
  const auto heavy_work = all_active(spec, profile);
  TickResult rl;
  TickResult rh;
  for (int i = 0; i < 5; ++i) {
    rl = light.tick(light_work, ms_to_ns(1));
    rh = heavy.tick(heavy_work, ms_to_ns(1));
  }
  // Same counters, different watts: the counter-invisible dimension.
  EXPECT_EQ(light.machine_counters().instructions, heavy.machine_counters().instructions);
  EXPECT_GT(rh.power.cpu_dynamic, rl.power.cpu_dynamic);
}

class MachineFrequencyProperty : public ::testing::TestWithParam<double> {};

TEST_P(MachineFrequencyProperty, PowerWithinTdpAndAboveIdle) {
  const auto spec = i3_2120();
  Machine machine(spec);
  machine.set_frequency(GetParam());
  const auto work = all_active(spec, workloads::memory_stress(24e6));
  TickResult r;
  for (int i = 0; i < 20; ++i) r = machine.tick(work, ms_to_ns(1));
  const GroundTruthParams gt;
  EXPECT_GT(r.power.total(), gt.platform_watts);
  EXPECT_LT(r.power.package(), spec.tdp_watts);
}
INSTANTIATE_TEST_SUITE_P(Ladder, MachineFrequencyProperty,
                         ::testing::Values(1.6e9, 2.0e9, 2.6e9, 3.0e9, 3.3e9));

// --- Heterogeneous clusters (big.LITTLE) ---

TEST(CpuSpecClusters, BigLittlePresetIsConsistent) {
  const CpuSpec spec = big_little();
  EXPECT_TRUE(spec.heterogeneous());
  EXPECT_EQ(spec.cluster_count(), 2u);
  EXPECT_EQ(spec.cores, 6u);
  EXPECT_EQ(spec.hw_threads(), 6u);
  // Cores map to clusters by prefix sums of the cluster core counts.
  EXPECT_EQ(spec.cluster_of_core(0), 0u);
  EXPECT_EQ(spec.cluster_of_core(1), 0u);
  EXPECT_EQ(spec.cluster_of_core(2), 1u);
  EXPECT_EQ(spec.cluster_of_core(5), 1u);
  // The primary cluster's ladder IS the package ladder.
  EXPECT_EQ(spec.clusters[0].frequencies_hz, spec.frequencies_hz);
  EXPECT_LT(spec.clusters[1].perf_scale, 1.0);
  EXPECT_LT(spec.clusters[1].energy_scale, 1.0);
}

TEST(CpuSpecClusters, ValidateCatchesBadClusterSpecs) {
  CpuSpec spec = big_little();
  spec.clusters[1].cores = 5;  // 2 + 5 != 6.
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = big_little();
  spec.clusters[0].frequencies_hz.pop_back();  // Ladder != package ladder.
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = big_little();
  spec.turbo_boost = true;  // Turbo is package-global; forbidden here.
  spec.turbo_frequencies_hz = {3.0e9};
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = big_little();
  spec.clusters[1].name = "big";  // Duplicate cluster name.
  EXPECT_THROW(spec.validate(), std::invalid_argument);
}

TEST(MachineClusters, HomogeneousSingleClusterIsBitIdentical) {
  // A one-cluster part with scale 1.0 and the package ladder must behave
  // exactly like the clusterless spec — the refactor's safety property.
  const CpuSpec plain = i3_2120();
  CpuSpec clustered = plain;
  CoreClusterSpec only;
  only.name = "uniform";
  only.cores = plain.cores;
  only.frequencies_hz = plain.frequencies_hz;
  clustered.clusters = {only};

  Machine a(plain);
  Machine b(clustered);
  const auto work = all_active(plain, workloads::mixed_stress(0.7, 8e6, 0.8));
  for (int i = 0; i < 50; ++i) {
    const auto& ra = a.tick(work, ms_to_ns(1));
    const auto& rb = b.tick(work, ms_to_ns(1));
    ASSERT_EQ(ra.energy_joules, rb.energy_joules) << "tick " << i;
    ASSERT_EQ(ra.power.total(), rb.power.total()) << "tick " << i;
  }
  EXPECT_EQ(a.machine_counters(), b.machine_counters());
}

TEST(MachineClusters, LittleCoresAreSlowerAndCheaper) {
  const CpuSpec spec = big_little();
  const auto profile = workloads::cpu_stress(1.0);
  // Same single-thread workload on a big core (thread 0) vs a LITTLE core
  // (thread 5), everything else idle.
  auto run_on = [&](std::size_t thread) {
    Machine machine(spec);
    std::vector<ThreadWork> work(spec.hw_threads());
    work[thread].active = true;
    work[thread].task_id = 1;
    work[thread].profile = profile;
    double joules = 0.0;
    double instructions = 0.0;
    for (int i = 0; i < 50; ++i) {
      const auto& r = machine.tick(work, ms_to_ns(1));
      joules += r.threads[thread].attributed_joules;
      instructions = static_cast<double>(machine.thread_counters(thread).instructions);
    }
    return std::pair<double, double>(instructions, joules);
  };
  const auto [big_instr, big_joules] = run_on(0);
  const auto [little_instr, little_joules] = run_on(5);
  EXPECT_LT(little_instr, big_instr);          // perf_scale and lower f_max.
  EXPECT_LT(little_joules, big_joules);        // energy_scale.
  // And per instruction the LITTLE core is still cheaper.
  EXPECT_LT(little_joules / little_instr, big_joules / big_instr);
}

TEST(MachineClusters, PerClusterFrequencyDomains) {
  Machine machine(big_little());
  ASSERT_EQ(machine.cluster_count(), 2u);
  // Package set point drives both domains proportionally: 1.0 GHz on the
  // big ladder is 1.0/2.6 of max → LITTLE snaps 0.577 GHz to 0.6 GHz.
  EXPECT_DOUBLE_EQ(machine.set_frequency(1.0e9), 1.0e9);
  EXPECT_DOUBLE_EQ(machine.cluster_frequency(0), 1.0e9);
  EXPECT_DOUBLE_EQ(machine.cluster_frequency(1), 0.6e9);
  // Pinning one domain leaves the other alone, snapping on its own ladder.
  EXPECT_DOUBLE_EQ(machine.set_cluster_frequency(1, 1.0e9), 0.9e9);
  EXPECT_DOUBLE_EQ(machine.cluster_frequency(0), 1.0e9);
  EXPECT_DOUBLE_EQ(machine.cluster_frequency(1), 0.9e9);
  EXPECT_THROW(machine.set_cluster_frequency(2, 1e9), std::invalid_argument);
}

TEST(MachineClusters, DroppingLittleFrequencySavesPower) {
  const CpuSpec spec = big_little();
  const auto work = all_active(spec, workloads::cpu_stress(0.9));
  Machine fast(spec);
  Machine slow(spec);
  slow.set_cluster_frequency(1, 0.6e9);
  TickResult rf;
  TickResult rs;
  for (int i = 0; i < 20; ++i) {
    rf = fast.tick(work, ms_to_ns(1));
    rs = slow.tick(work, ms_to_ns(1));
  }
  EXPECT_LT(rs.power.total(), rf.power.total());
  EXPECT_LT(slow.machine_counters().instructions, fast.machine_counters().instructions);
}

}  // namespace
}  // namespace powerapi::simcpu
