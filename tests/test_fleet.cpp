// FleetMonitor: N hosts on one actor system. The load-bearing property is
// host-level isolation — a host monitored inside a fleet (threaded,
// work-stealing dispatcher) must produce exactly the series a standalone
// kManual PowerMeter produces over an identically constructed host.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <stdexcept>

#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "powerapi/power_meter.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi::api {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

model::CpuPowerModel fleet_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheMisses};
    const double scale = hz / 3.3e9;
    f.coefficients = {2.2e-9 * scale, 1.6e-7};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(31.0, std::move(formulas));
}

/// Deterministic host construction keyed by index: every call with the same
/// index yields a bit-identical simulated machine and workload.
std::unique_ptr<os::System> make_host(std::size_t index) {
  auto host = std::make_unique<os::System>(simcpu::i3_2120());
  const double duty = 0.2 + 0.1 * static_cast<double>(index % 8);
  host->spawn("app", std::make_unique<workloads::SteadyBehavior>(
                         workloads::cpu_stress(duty), 0));
  host->spawn("mem", std::make_unique<workloads::SteadyBehavior>(
                         workloads::memory_stress(4e6 * (1 + index % 3)), 0));
  return host;
}

PipelineSpec fleet_spec() {
  PipelineSpec spec;
  spec.model = fleet_model();
  return spec;
}

TEST(FleetMonitor, ThreadedHostsMatchStandaloneManualMetersExactly) {
  constexpr std::size_t kHosts = 8;
  constexpr util::DurationNs kDuration = seconds_to_ns(2);

  // Fleet run: 8 hosts advanced concurrently on the threaded dispatcher.
  std::vector<std::unique_ptr<os::System>> hosts;
  for (std::size_t i = 0; i < kHosts; ++i) hosts.push_back(make_host(i));
  FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kThreaded;
  options.workers = 4;
  FleetMonitor fleet(options);
  std::vector<MemoryReporter*> fleet_memory;
  for (auto& host : hosts) {
    const std::size_t index = fleet.add_host(*host, fleet_spec());
    fleet_memory.push_back(&fleet.add_memory_reporter(index));
  }
  fleet.run_for(kDuration);
  fleet.finish();

  // Reference runs: each host standalone under a deterministic kManual meter.
  for (std::size_t i = 0; i < kHosts; ++i) {
    auto solo_host = make_host(i);
    PowerMeter meter(*solo_host, fleet_model());
    auto& solo_memory = meter.add_memory_reporter();
    meter.run_for(kDuration);
    meter.finish();

    for (const char* formula : {"powerapi-hpc", "powerspy"}) {
      const auto fleet_series = fleet_memory[i]->series(formula);
      const auto solo_series = solo_memory.series(formula);
      ASSERT_GT(solo_series.size(), 3u) << "host " << i << " " << formula;
      ASSERT_EQ(fleet_series.size(), solo_series.size())
          << "host " << i << " " << formula;
      for (std::size_t k = 0; k < solo_series.size(); ++k) {
        EXPECT_EQ(fleet_series[k].timestamp, solo_series[k].timestamp)
            << "host " << i << " " << formula << " row " << k;
        EXPECT_NEAR(fleet_series[k].watts, solo_series[k].watts, 1e-9)
            << "host " << i << " " << formula << " row " << k;
      }
    }
  }
}

TEST(FleetMonitor, FleetDimensionSumsMachinePowerAcrossHosts) {
  auto host_a = make_host(0);
  auto host_b = make_host(3);
  FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kManual;
  FleetMonitor fleet(options);
  const auto a = fleet.add_host(*host_a, fleet_spec());
  const auto b = fleet.add_host(*host_b, fleet_spec());
  auto& mem_a = fleet.add_memory_reporter(a);
  auto& mem_b = fleet.add_memory_reporter(b);
  auto& fleet_mem = fleet.add_fleet_reporter();
  fleet.run_for(seconds_to_ns(2));
  fleet.finish();

  std::map<util::TimestampNs, double> a_watts, b_watts;
  for (const auto& row : mem_a.series("powerspy")) a_watts[row.timestamp] = row.watts;
  for (const auto& row : mem_b.series("powerspy")) b_watts[row.timestamp] = row.watts;

  std::size_t fleet_rows = 0;
  for (const auto& row : fleet_mem.all()) {
    EXPECT_EQ(row.group, "(fleet)");
    EXPECT_EQ(row.pid, kMachinePid);
    if (row.formula != "powerspy") continue;
    ++fleet_rows;
    ASSERT_TRUE(a_watts.count(row.timestamp)) << "t=" << row.timestamp;
    ASSERT_TRUE(b_watts.count(row.timestamp)) << "t=" << row.timestamp;
    EXPECT_NEAR(row.watts, a_watts[row.timestamp] + b_watts[row.timestamp], 1e-9);
  }
  EXPECT_GT(fleet_rows, 3u);
  // Every timestamp both hosts reported shows up in the fleet dimension.
  EXPECT_EQ(fleet_rows, a_watts.size());
}

TEST(FleetMonitor, ManualModeIsDeterministicAcrossRuns) {
  auto run = [] {
    auto host_a = make_host(1);
    auto host_b = make_host(5);
    FleetMonitor::Options options;
    options.mode = actors::ActorSystem::Mode::kManual;
    FleetMonitor fleet(options);
    fleet.add_host(*host_a, fleet_spec());
    fleet.add_host(*host_b, fleet_spec());
    auto& fleet_mem = fleet.add_fleet_reporter();
    fleet.run_for(seconds_to_ns(2));
    fleet.finish();
    return MemoryReporter::watts_of(fleet_mem.group_series("powerapi-hpc", "(fleet)"));
  };
  const auto first = run();
  const auto second = run();
  ASSERT_GT(first.size(), 3u);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i], second[i]) << "row " << i;
  }
}

TEST(FleetMonitor, PerHostMonitoringAndNamespacesStayIsolated) {
  auto host_a = make_host(2);
  auto host_b = make_host(2);  // Identical twin, different pids monitored.
  const auto pids_a = host_a->pids();
  ASSERT_GE(pids_a.size(), 2u);

  FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kManual;
  FleetMonitor fleet(options);
  PipelineSpec per_pid = fleet_spec();
  per_pid.dimension = AggregationDimension::kPid;
  const auto a = fleet.add_host(*host_a, per_pid);
  const auto b = fleet.add_host(*host_b, per_pid);
  EXPECT_EQ(fleet.pipeline(a).topic_namespace(), "h0/");
  EXPECT_EQ(fleet.pipeline(b).topic_namespace(), "h1/");
  auto& mem_a = fleet.add_memory_reporter(a);
  auto& mem_b = fleet.add_memory_reporter(b);
  fleet.monitor(a, {pids_a[0]});  // Host b monitors nothing per-pid.
  fleet.run_for(seconds_to_ns(1));
  fleet.finish();

  EXPECT_GT(mem_a.series("powerapi-hpc", pids_a[0]).size(), 1u);
  // Host b's pipeline never saw host a's monitor() call: only machine rows.
  for (const auto& row : mem_b.all()) EXPECT_EQ(row.pid, kMachinePid);
}

TEST(FleetMonitor, FleetReporterRequiresAggregationEnabled) {
  FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kManual;
  options.fleet_aggregation = false;
  FleetMonitor fleet(options);
  EXPECT_THROW(fleet.add_fleet_reporter(), std::logic_error);
}

TEST(FleetMonitor, RunForAfterFinishThrows) {
  FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kManual;
  FleetMonitor fleet(options);
  auto host = make_host(0);
  fleet.add_host(*host, fleet_spec());
  fleet.run_for(ms_to_ns(500));
  fleet.finish();
  EXPECT_THROW(fleet.run_for(ms_to_ns(500)), std::logic_error);
}

}  // namespace
}  // namespace powerapi::api
