// Tests for the OS substrate: process lifecycle, schedulers, accounting,
// the DVFS governor and run_for semantics.
#include <gtest/gtest.h>

#include <memory>

#include "os/scheduler.h"
#include "os/system.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi::os {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

std::unique_ptr<TaskBehavior> steady(double intensity = 1.0,
                                     util::DurationNs duration = 0) {
  return std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(intensity),
                                                     duration);
}

TEST(System, SpawnAssignsIncreasingPids) {
  System system(simcpu::i3_2120());
  const Pid a = system.spawn("a", steady());
  const Pid b = system.spawn("b", steady());
  EXPECT_LT(a, b);
  EXPECT_TRUE(system.alive(a));
  EXPECT_EQ(system.pids().size(), 2u);
  EXPECT_THROW(system.spawn("empty", std::vector<std::unique_ptr<TaskBehavior>>{}),
               std::invalid_argument);
}

TEST(System, KillStopsScheduling) {
  System system(simcpu::i3_2120());
  const Pid pid = system.spawn("victim", steady());
  system.run_for(ms_to_ns(5));
  const auto before = system.proc_stat(pid)->counters.instructions;
  EXPECT_GT(before, 0u);
  system.kill(pid);
  EXPECT_FALSE(system.alive(pid));
  system.run_for(ms_to_ns(5));
  EXPECT_EQ(system.proc_stat(pid)->counters.instructions, before);
  // Killing an unknown pid is a no-op.
  system.kill(9999);
}

TEST(System, TasksExitWhenBehaviorCompletes) {
  System system(simcpu::i3_2120());
  const Pid pid = system.spawn("short", steady(1.0, ms_to_ns(3)));
  system.run_for(ms_to_ns(10));
  EXPECT_FALSE(system.alive(pid));
  EXPECT_TRUE(system.pids().empty());
}

TEST(System, ProcStatAccumulatesAcrossThreads) {
  System system(simcpu::i3_2120());
  std::vector<std::unique_ptr<TaskBehavior>> threads;
  threads.push_back(steady());
  threads.push_back(steady());
  const Pid pid = system.spawn("multi", std::move(threads));
  system.run_for(ms_to_ns(10));
  const auto stat = system.proc_stat(pid);
  ASSERT_TRUE(stat.has_value());
  EXPECT_EQ(stat->threads, 2u);
  EXPECT_GT(stat->counters.instructions, 0u);
  EXPECT_GT(stat->cpu_time_ns, 0);
  EXPECT_GT(stat->attributed_energy_joules, 0.0);
  EXPECT_FALSE(system.proc_stat(12345).has_value());
}

TEST(System, UtilizationReflectsLoad) {
  System idle_system(simcpu::i3_2120());
  idle_system.run_for(ms_to_ns(5));
  EXPECT_DOUBLE_EQ(idle_system.system_stat().utilization, 0.0);

  System busy_system(simcpu::i3_2120());
  for (int i = 0; i < 4; ++i) busy_system.spawn("t", steady());
  busy_system.run_for(ms_to_ns(5));
  EXPECT_NEAR(busy_system.system_stat().utilization, 1.0, 0.01);
}

TEST(System, ClockAdvancesByTicks) {
  System::Options options;
  options.tick_ns = ms_to_ns(2);
  System system(simcpu::i3_2120(), std::move(options));
  EXPECT_EQ(system.now_ns(), 0);
  system.tick();
  EXPECT_EQ(system.now_ns(), ms_to_ns(2));
  system.run_for(ms_to_ns(10));
  EXPECT_EQ(system.now_ns(), ms_to_ns(12));
  int ticks = 0;
  system.run_for(ms_to_ns(6), [&](const System&) { ++ticks; });
  EXPECT_EQ(ticks, 3);
}

TEST(System, PinFrequencyDisablesGovernor) {
  System::Options options;
  options.use_ondemand_governor = true;
  System system(simcpu::i3_2120(), std::move(options));
  EXPECT_DOUBLE_EQ(system.pin_frequency(1.6e9), 1.6e9);
  for (int i = 0; i < 4; ++i) system.spawn("t", steady());
  system.run_for(ms_to_ns(50));
  EXPECT_DOUBLE_EQ(system.system_stat().frequency_hz, 1.6e9);  // Stayed pinned.
}

TEST(OndemandGovernor, RampsUpUnderLoadAndDownWhenIdle) {
  System::Options options;
  options.use_ondemand_governor = true;
  System system(simcpu::i3_2120(), std::move(options));
  system.machine().set_frequency(1.6e9);
  for (int i = 0; i < 4; ++i) system.spawn("t", steady());
  system.run_for(ms_to_ns(20));
  EXPECT_DOUBLE_EQ(system.system_stat().frequency_hz, 3.3e9);  // Jumped to max.

  // Kill the load: frequency steps back down with hysteresis.
  for (const Pid pid : system.pids()) system.kill(pid);
  system.run_for(ms_to_ns(200));
  EXPECT_LT(system.system_stat().frequency_hz, 3.3e9);
}

// --- Schedulers ---

/// Behavior probe: captures which hardware thread each task ran on.
TEST(Schedulers, PackFillsSmtSiblingsFirst) {
  System::Options options;
  options.scheduler = std::make_unique<PackScheduler>();
  System system(simcpu::i3_2120(), std::move(options));
  const Pid a = system.spawn("a", steady());
  const Pid b = system.spawn("b", steady());
  system.run_for(ms_to_ns(2));
  // Both tasks share core 0 (hw threads 0 and 1): their counters must show
  // SMT co-residency.
  EXPECT_GT(system.proc_stat(a)->counters.smt_shared_cycles, 0u);
  EXPECT_GT(system.proc_stat(b)->counters.smt_shared_cycles, 0u);
}

TEST(Schedulers, SpreadUsesDistinctCoresFirst) {
  System::Options options;
  options.scheduler = std::make_unique<SpreadScheduler>();
  System system(simcpu::i3_2120(), std::move(options));
  const Pid a = system.spawn("a", steady());
  const Pid b = system.spawn("b", steady());
  system.run_for(ms_to_ns(2));
  EXPECT_EQ(system.proc_stat(a)->counters.smt_shared_cycles, 0u);
  EXPECT_EQ(system.proc_stat(b)->counters.smt_shared_cycles, 0u);
}

TEST(Schedulers, RoundRobinSharesCpuAmongExcessTasks) {
  System::Options options;
  options.scheduler = std::make_unique<RoundRobinScheduler>();
  System system(simcpu::i3_2120(), std::move(options));
  std::vector<Pid> pids;
  for (int i = 0; i < 8; ++i) pids.push_back(system.spawn("t", steady()));
  system.run_for(ms_to_ns(80));
  // Every task must have made progress (fair sharing), roughly equally.
  std::uint64_t min_instr = ~0ull;
  std::uint64_t max_instr = 0;
  for (const Pid pid : pids) {
    const auto instr = system.proc_stat(pid)->counters.instructions;
    EXPECT_GT(instr, 0u);
    min_instr = std::min(min_instr, instr);
    max_instr = std::max(max_instr, instr);
  }
  EXPECT_LT(static_cast<double>(max_instr) / static_cast<double>(min_instr), 2.0);
}

TEST(Schedulers, SpreadBeatsPackOnThroughput) {
  auto run = [](std::unique_ptr<Scheduler> scheduler) {
    System::Options options;
    options.scheduler = std::move(scheduler);
    System system(simcpu::i3_2120(), std::move(options));
    system.spawn("a", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(), 0));
    system.spawn("b", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(), 0));
    system.run_for(ms_to_ns(50));
    return system.machine().machine_counters().instructions;
  };
  const auto packed = run(std::make_unique<PackScheduler>());
  const auto spread = run(std::make_unique<SpreadScheduler>());
  EXPECT_GT(spread, packed);  // Two full cores beat one SMT-shared core.
}

}  // namespace
}  // namespace powerapi::os
