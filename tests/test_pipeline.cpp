// Pipeline-layer units: the SamplingWindow bookkeeping core, the
// counter-underflow guard in HpcSensor (pid reuse), PowerMeter's tick
// coalescing under a coarse kernel quantum, and finish() flush semantics.
#include <gtest/gtest.h>

#include <any>
#include <memory>
#include <set>
#include <tuple>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "hpc/backend.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "powerapi/sampling_window.h"
#include "powerapi/sensors.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi::api {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

// --- SamplingWindow ---

TEST(SamplingWindow, FirstAdvancePrimesWithoutAWindow) {
  SamplingWindow<int> window;
  EXPECT_FALSE(window.primed());
  EXPECT_FALSE(window.advance(ms_to_ns(10), 100).has_value());
  EXPECT_TRUE(window.primed());
  EXPECT_EQ(window.last(), 100);
  EXPECT_EQ(window.last_time(), ms_to_ns(10));
}

TEST(SamplingWindow, SecondAdvanceYieldsPreviousSnapshotAndLength) {
  SamplingWindow<int> window;
  window.advance(ms_to_ns(10), 100);
  const auto completed = window.advance(ms_to_ns(35), 250);
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(completed->previous, 100);
  EXPECT_NEAR(completed->seconds, 0.025, 1e-12);
  EXPECT_EQ(completed->start, ms_to_ns(10));
  // State rolled forward: the next window differences against 250.
  EXPECT_EQ(window.last(), 250);
  EXPECT_EQ(window.last_time(), ms_to_ns(35));
}

TEST(SamplingWindow, StaleTimestampIsIgnoredWithoutRollingForward) {
  SamplingWindow<int> window;
  window.advance(ms_to_ns(10), 100);
  EXPECT_FALSE(window.advance(ms_to_ns(10), 999).has_value());  // Same time.
  EXPECT_FALSE(window.advance(ms_to_ns(5), 999).has_value());   // Backwards.
  EXPECT_EQ(window.last(), 100);  // Snapshot untouched by stale calls.
  const auto completed = window.advance(ms_to_ns(20), 200);
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(completed->previous, 100);
}

TEST(SamplingWindow, ResetForcesRepriming) {
  SamplingWindow<int> window;
  window.advance(ms_to_ns(10), 100);
  window.advance(ms_to_ns(20), 200);
  window.reset();
  EXPECT_FALSE(window.primed());
  EXPECT_FALSE(window.advance(ms_to_ns(30), 50).has_value());  // Primes anew.
  const auto completed = window.advance(ms_to_ns(40), 80);
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(completed->previous, 50);  // New baseline, not the stale 200.
  EXPECT_NEAR(completed->seconds, 0.010, 1e-12);
}

TEST(SamplingWindow, ConsecutiveWindowsChain) {
  SamplingWindow<double> window;
  window.advance(seconds_to_ns(1), 1.0);
  for (int i = 2; i <= 5; ++i) {
    const auto completed = window.advance(seconds_to_ns(i), static_cast<double>(i));
    ASSERT_TRUE(completed.has_value());
    EXPECT_DOUBLE_EQ(completed->previous, i - 1.0);
    EXPECT_NEAR(completed->seconds, 1.0, 1e-9);
    EXPECT_EQ(completed->start, seconds_to_ns(i - 1));
  }
}

// --- HpcSensor counter-underflow guard (pid reuse / counter reset) ---

/// Collects raw payloads of one type from a topic.
template <typename T>
class Collector final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override {
    if (const T* value = envelope.payload.get<T>()) items.push_back(*value);
  }
  std::vector<T> items;
};

/// A backend whose cumulative counters the test scripts directly.
class ScriptedBackend final : public hpc::CounterBackend {
 public:
  std::string name() const override { return "scripted"; }
  bool supports(hpc::EventId) const override { return true; }
  util::Result<hpc::EventValues> read(hpc::Target target) override {
    return util::Result<hpc::EventValues>(values[target.pid]);
  }
  std::map<std::int64_t, hpc::EventValues> values;
};

/// Flattens SensorBatch rows back into per-target SensorReports so the
/// regression assertions stay row-level.
class BatchRowCollector final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override {
    const auto* batch = envelope.payload.get<SensorBatch>();
    if (batch == nullptr || !batch->features) return;
    for (std::size_t i = 0; i < batch->features->rows(); ++i) {
      SensorReport row;
      static_cast<model::FeatureVector&>(row) = batch->features->row(i);
      row.timestamp = batch->timestamp;
      row.pid = batch->features->pid(i);
      row.sensor = batch->sensor;
      row.window_seconds = batch->features->window_seconds(i);
      row.seq = batch->seq;
      items.push_back(row);
    }
  }
  std::vector<SensorReport> items;
};

TEST(HpcSensor, CounterRegressionRePrimesInsteadOfWrapping) {
  actors::ActorSystem actors(actors::ActorSystem::Mode::kManual);
  actors::EventBus bus(actors);
  ScriptedBackend backend;
  constexpr std::int64_t kPid = 42;

  auto collector = std::make_unique<BatchRowCollector>();
  BatchRowCollector& reports = *collector;
  bus.subscribe("sensor:hpc", actors.spawn("collector", std::move(collector)));
  const auto sensor = actors.spawn_as<HpcSensor>(
      "sensor", bus, bus.intern("sensor:hpc"), backend,
      [] { return std::vector<std::int64_t>{kPid}; }, nullptr);

  auto tick = [&](int second, std::uint64_t instructions) {
    backend.values[hpc::Target::kMachine][hpc::EventId::kInstructions] =
        instructions * 10;  // Machine counters stay monotone throughout.
    backend.values[kPid][hpc::EventId::kInstructions] = instructions;
    sensor.tell(MonitorTick{seconds_to_ns(second)});
    actors.drain();
  };

  tick(1, 1'000'000);  // Primes.
  tick(2, 3'000'000);  // First window: 2e6 instructions over 1 s.
  // The process died and the pid was reused: the new process's cumulative
  // counters restart near zero — far below the previous snapshot.
  tick(3, 50'000);  // Regressed: must re-prime, not wrap to ~1.8e19/s.
  tick(4, 250'000);  // First window of the reincarnated pid.

  std::vector<SensorReport> pid_rows;
  for (const auto& r : reports.items) {
    if (r.pid == kPid) pid_rows.push_back(r);
  }
  ASSERT_EQ(pid_rows.size(), 2u);  // Ticks 2 and 4; tick 3 only re-primed.
  EXPECT_NEAR(model::rate_of(pid_rows[0].rates, hpc::EventId::kInstructions),
              2e6, 1e-6);
  // Post-reuse window differences against the tick-3 baseline (50k), not the
  // stale 3e6 snapshot: an unsigned wrap would read ~1.8e19 events/s.
  EXPECT_NEAR(model::rate_of(pid_rows[1].rates, hpc::EventId::kInstructions),
              2e5, 1e-6);
  for (const auto& r : pid_rows) {
    EXPECT_LT(model::rate_of(r.rates, hpc::EventId::kInstructions), 1e12);
  }

  actors.shutdown();
}

// --- PowerMeter::run_for tick coalescing ---

model::CpuPowerModel tiny_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions};
    f.coefficients = {2.2e-9};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(31.0, std::move(formulas));
}

TEST(PowerMeter, CoarseKernelQuantumCoalescesDueTicks) {
  // Kernel quantum (10 ms) far above the monitor period (3 ms): each chunk
  // advance overshoots to the next quantum and several ticks fall due at
  // once. The ticker's catch-up must publish every one of them, stamped
  // with the host's (coalesced) now.
  os::System::Options options;
  options.tick_ns = ms_to_ns(10);
  os::System system(simcpu::i3_2120(), std::move(options));

  PowerMeter::Config config;
  config.period = ms_to_ns(3);
  PowerMeter meter(system, tiny_model(), config);

  auto collector = std::make_unique<Collector<MonitorTick>>();
  Collector<MonitorTick>& ticks = *collector;
  meter.bus().subscribe(meter.pipeline().tick_topic(),
                        meter.actor_system().spawn("tick-probe", std::move(collector)));

  meter.run_for(ms_to_ns(30));

  // Chunks land on the 10 ms quanta: ticks due at 3,6,9 ms fire at now=10ms,
  // 12,15,18 at 20 ms, and 21,24,27,30 at 30 ms.
  ASSERT_EQ(ticks.items.size(), 10u);
  const std::vector<util::TimestampNs> expected = {
      ms_to_ns(10), ms_to_ns(10), ms_to_ns(10), ms_to_ns(20), ms_to_ns(20),
      ms_to_ns(20), ms_to_ns(30), ms_to_ns(30), ms_to_ns(30), ms_to_ns(30)};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(ticks.items[i].timestamp, expected[i]) << "tick " << i;
  }
  meter.finish();
}

TEST(PowerMeter, RunForAtExactPeriodMultiplesFiresOneTickPerChunk) {
  os::System system(simcpu::i3_2120());
  PowerMeter::Config config;
  config.period = ms_to_ns(250);
  PowerMeter meter(system, tiny_model(), config);

  auto collector = std::make_unique<Collector<MonitorTick>>();
  Collector<MonitorTick>& ticks = *collector;
  meter.bus().subscribe(meter.pipeline().tick_topic(),
                        meter.actor_system().spawn("tick-probe", std::move(collector)));

  meter.run_for(seconds_to_ns(2));
  ASSERT_EQ(ticks.items.size(), 8u);
  for (std::size_t i = 0; i < ticks.items.size(); ++i) {
    EXPECT_EQ(ticks.items[i].timestamp, ms_to_ns(250) * (i + 1));
  }
  meter.finish();
}

// --- finish(): flush pending aggregation groups exactly once ---

TEST(PowerMeter, FinishFlushesPendingGroupsExactlyOnce) {
  os::System system(simcpu::i3_2120());
  system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                          workloads::cpu_stress(), 0));
  PowerMeter meter(system, tiny_model());
  auto& memory = meter.add_memory_reporter();
  meter.run_for(seconds_to_ns(2));

  // The timestamp aggregator holds the newest group until a later watermark
  // arrives, so the final window is still pending here.
  const std::size_t before = memory.all().size();
  meter.finish();
  const std::size_t after_first = memory.all().size();
  EXPECT_GT(after_first, before);  // finish() flushed the pending group.
  meter.finish();                  // Idempotent: nothing left to flush.
  EXPECT_EQ(memory.all().size(), after_first);

  // Exactly once: no (timestamp, pid, group, formula) row may repeat.
  std::set<std::tuple<util::TimestampNs, std::int64_t, std::string, std::string>> seen;
  for (const auto& row : memory.all()) {
    EXPECT_TRUE(
        seen.insert({row.timestamp, row.pid, row.group, row.formula}).second)
        << "duplicate row for formula " << row.formula << " at t=" << row.timestamp;
  }
}

}  // namespace
}  // namespace powerapi::api
