// Property-based suites (parameterized over seeds): invariants that must
// hold for arbitrary inputs — serialization round-trips, estimator
// non-negativity, cache-model bounds, machine energy conservation and
// scheduler progress guarantees.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "mathx/correlation.h"
#include "mathx/ols.h"
#include "model/model_io.h"
#include "os/system.h"
#include "simcpu/cache.h"
#include "simcpu/machine.h"
#include "util/rng.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi {
namespace {

using util::ms_to_ns;

class SeededProperty : public ::testing::TestWithParam<int> {
 protected:
  util::Rng rng() const { return util::Rng(static_cast<std::uint64_t>(GetParam()) * 7919); }
};

// --- Model serialization round-trip over random models ---

class ModelRoundTripProperty : public SeededProperty {};

TEST_P(ModelRoundTripProperty, RandomModelsSurviveTextRoundTrip) {
  util::Rng r = rng();
  std::vector<model::FrequencyFormula> formulas;
  const auto n_formulas = static_cast<std::size_t>(r.uniform_int(1, 6));
  double hz = 1e9;
  for (std::size_t f = 0; f < n_formulas; ++f) {
    hz += r.uniform(1e8, 1e9);
    model::FrequencyFormula formula;
    formula.frequency_hz = hz;
    const auto n_events = static_cast<std::size_t>(
        r.uniform_int(1, static_cast<std::int64_t>(hpc::kEventCount)));
    for (std::size_t e = 0; e < n_events; ++e) {
      const auto id = static_cast<hpc::EventId>(e);
      formula.events.push_back(id);
      formula.coefficients.push_back(r.uniform(0.0, 1e-6));
    }
    formulas.push_back(std::move(formula));
  }
  const model::CpuPowerModel original(r.uniform(0.0, 100.0), std::move(formulas));

  const auto parsed = model::model_from_string(model::model_to_string(original));
  ASSERT_TRUE(parsed.ok()) << parsed.error_message();
  const auto& restored = parsed.value();
  ASSERT_EQ(restored.formulas().size(), original.formulas().size());
  EXPECT_DOUBLE_EQ(restored.idle_watts(), original.idle_watts());

  // Behavioral equivalence: identical estimates on random rate vectors.
  for (int probe = 0; probe < 10; ++probe) {
    model::EventRates rates{};
    for (std::size_t e = 0; e < hpc::kEventCount; ++e) {
      rates[e] = r.uniform(0.0, 1e10);
    }
    const double f_probe = r.uniform(5e8, hz * 1.2);
    EXPECT_DOUBLE_EQ(restored.estimate_machine(f_probe, rates),
                     original.estimate_machine(f_probe, rates));
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, ModelRoundTripProperty, ::testing::Range(1, 13));

// --- NNLS invariants on random systems ---

class NnlsProperty : public SeededProperty {};

TEST_P(NnlsProperty, CoefficientsNonNegativeAndFitNoWorseThanZero) {
  util::Rng r = rng();
  const std::size_t rows = 60;
  const std::size_t cols = static_cast<std::size_t>(r.uniform_int(1, 5));
  mathx::Matrix a(rows, cols);
  std::vector<double> b(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) a(i, j) = r.uniform(0.0, 10.0);
    b[i] = r.uniform(-5.0, 20.0);
  }
  const auto fit = mathx::nnls(a, b);
  for (const double c : fit.coefficients) EXPECT_GE(c, 0.0);
  double zero_residual = 0.0;
  for (const double v : b) zero_residual += v * v;
  EXPECT_LE(fit.residual_norm, std::sqrt(zero_residual) + 1e-9);
}
INSTANTIATE_TEST_SUITE_P(Seeds, NnlsProperty, ::testing::Range(1, 13));

// --- Correlations bounded on arbitrary data ---

class CorrelationProperty : public SeededProperty {};

TEST_P(CorrelationProperty, AlwaysWithinUnitInterval) {
  util::Rng r = rng();
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back(r.uniform(-1e6, 1e6));
    // Mix of correlated, anti-correlated and noisy points.
    y.push_back(r.bernoulli(0.5) ? x.back() * r.uniform(-2, 2)
                                 : r.uniform(-1e6, 1e6));
  }
  const double p = mathx::pearson(x, y);
  const double s = mathx::spearman(x, y);
  EXPECT_GE(p, -1.0);
  EXPECT_LE(p, 1.0);
  EXPECT_GE(s, -1.0);
  EXPECT_LE(s, 1.0);
}
INSTANTIATE_TEST_SUITE_P(Seeds, CorrelationProperty, ::testing::Range(1, 9));

// --- Cache model bounds under random demand mixes ---

class CacheProperty : public SeededProperty {};

TEST_P(CacheProperty, SharesAndMissRatiosStayBounded) {
  util::Rng r = rng();
  const auto spec = simcpu::i3_2120();
  simcpu::CacheHierarchy cache(spec, spec.hw_threads());
  for (int step = 0; step < 100; ++step) {
    std::vector<simcpu::CacheDemand> demands(spec.hw_threads());
    for (auto& d : demands) {
      d.active = r.bernoulli(0.7);
      d.working_set_bytes = r.uniform(1e3, 1e8);
      d.llc_refs_per_sec = r.uniform(0.0, 5e8);
      d.intrinsic_miss_ratio = r.uniform(0.0, 1.0);
    }
    const auto shares = cache.tick(demands, ms_to_ns(1));
    double total_share = 0.0;
    for (std::size_t i = 0; i < shares.size(); ++i) {
      EXPECT_GE(shares[i].miss_ratio, 0.0);
      EXPECT_LE(shares[i].miss_ratio, 1.0);
      EXPECT_GE(shares[i].llc_share_bytes, 0.0);
      EXPECT_LE(shares[i].llc_share_bytes, static_cast<double>(cache.llc_bytes()) + 1.0);
      if (demands[i].active) total_share += shares[i].llc_share_bytes;
      // Miss ratio never drops below the workload's own compulsory misses.
      if (demands[i].active) {
        EXPECT_GE(shares[i].miss_ratio, demands[i].intrinsic_miss_ratio - 1e-9);
      }
    }
    EXPECT_LE(total_share, 4.0 * static_cast<double>(cache.llc_bytes()) + 1.0);
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, CacheProperty, ::testing::Range(1, 9));

// --- Machine conservation laws under random workloads ---

class MachineProperty : public SeededProperty {};

TEST_P(MachineProperty, EnergyAndCounterConservation) {
  util::Rng r = rng();
  simcpu::Machine machine(simcpu::i3_2120());
  machine.set_frequency(r.uniform(1.6e9, 3.3e9));

  double energy_sum = 0.0;
  double attributed_sum = 0.0;
  for (int step = 0; step < 60; ++step) {
    std::vector<simcpu::ThreadWork> work(machine.spec().hw_threads());
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!r.bernoulli(0.6)) continue;
      work[i].active = true;
      work[i].task_id = static_cast<std::int64_t>(i);
      work[i].profile = workloads::mixed_stress(r.uniform(0, 1), r.uniform(1e5, 6e7),
                                                r.uniform(0.1, 1.0));
    }
    const auto result = machine.tick(work, ms_to_ns(1));
    EXPECT_GE(result.power.total(), 0.0);
    energy_sum += result.energy_joules;
    for (const auto& t : result.threads) {
      EXPECT_GE(t.attributed_joules, 0.0);
      attributed_sum += t.attributed_joules;
      EXPECT_LE(t.delta.cache_misses, t.delta.cache_references);
      EXPECT_LE(t.delta.branch_misses, t.delta.branch_instructions);
      EXPECT_LE(t.delta.smt_shared_cycles, t.delta.cycles);
    }
  }
  EXPECT_NEAR(machine.total_energy_joules(), energy_sum, 1e-9);
  EXPECT_LE(attributed_sum, energy_sum);  // Overheads stay unattributed.

  simcpu::CounterBlock per_thread_sum;
  for (std::size_t i = 0; i < machine.spec().hw_threads(); ++i) {
    per_thread_sum += machine.thread_counters(i);
  }
  EXPECT_EQ(per_thread_sum, machine.machine_counters());
}
INSTANTIATE_TEST_SUITE_P(Seeds, MachineProperty, ::testing::Range(1, 9));

// --- Scheduler progress guarantee for any task population ---

class SchedulerProperty : public SeededProperty {};

TEST_P(SchedulerProperty, EveryRunnableTaskEventuallyProgresses) {
  util::Rng r = rng();
  os::System system(simcpu::i3_2120());
  const auto n_tasks = static_cast<int>(r.uniform_int(1, 12));
  std::vector<os::Pid> pids;
  for (int i = 0; i < n_tasks; ++i) {
    pids.push_back(system.spawn(
        "t", std::make_unique<workloads::SteadyBehavior>(
                 workloads::mixed_stress(r.uniform(0, 1), 4e6, 1.0), 0)));
  }
  system.run_for(ms_to_ns(20 * n_tasks));
  for (const os::Pid pid : pids) {
    EXPECT_GT(system.proc_stat(pid)->counters.instructions, 0u)
        << "starved pid " << pid << " among " << n_tasks;
  }
}
INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty, ::testing::Range(1, 9));

}  // namespace
}  // namespace powerapi
