// Edge cases of the batched SoA feature/model hot path: batch-vs-scalar
// bit-identity, zero-delta windows, counter regression (re-prime) hitting
// one row of a chunk while the others keep reporting, heterogeneous core
// counts inside one host-chunk, and chunk sizes that do not divide the
// fleet evenly.
#include <gtest/gtest.h>

#include <any>
#include <cstdint>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "hpc/backend.h"
#include "model/feature_matrix.h"
#include "model/power_model.h"
#include "os/system.h"
#include "powerapi/fleet_monitor.h"
#include "powerapi/sensors.h"
#include "util/result.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi::api {
namespace {

using util::ms_to_ns;
using util::ns_to_seconds;
using util::seconds_to_ns;

// --- extract_features_rows against the scalar reference ---

/// Deterministic pseudo-values: enough spread to exercise every lane, no
/// RNG so failures reproduce.
std::uint64_t fake_counter(std::size_t lane, std::size_t row, std::uint64_t base) {
  return base + lane * 977 + row * 131071 + (lane * row) % 89;
}

TEST(FeatureBatch, BatchMatchesScalarExtractionBitForBit) {
  constexpr std::size_t kRows = 5;
  constexpr double kFreq = 3.1e9;
  constexpr std::size_t kHwThreads = 4;

  simcpu::CounterLanes prev, cur;
  prev.resize(kRows);
  cur.resize(kRows);
  std::vector<double> windows(kRows);
  std::vector<std::int64_t> pids = {kMachinePid, 10, 11, 12, 13};
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t l = 0; l < simcpu::CounterLanes::kLanes; ++l) {
      prev.lane(l)[r] = fake_counter(l, r, 1'000'000);
      cur.lane(l)[r] = fake_counter(l, r, 1'000'000) + fake_counter(l, r, 5000);
    }
    prev.cpu_time()[r] = static_cast<std::int64_t>(r) * 1'000'000;
    cur.cpu_time()[r] = static_cast<std::int64_t>(r) * 1'000'000 + 400'000 * (r + 1);
    cur.live()[r] = 1;
    windows[r] = 0.01 + 0.001 * static_cast<double>(r);
  }

  model::FeatureMatrix out;
  out.frequency_hz = kFreq;
  out.resize(kRows);
  for (std::size_t r = 0; r < kRows; ++r) out.pids()[r] = pids[r];
  model::extract_features_rows(cur, prev, windows.data(), kHwThreads, out);

  for (std::size_t r = 0; r < kRows; ++r) {
    hpc::EventValues delta;
    for (hpc::EventId id : hpc::all_events()) {
      const auto l = static_cast<std::size_t>(id);
      delta[id] = cur.lane(l)[r] - prev.lane(l)[r];
    }
    const std::uint64_t smt_delta = cur.lane(simcpu::CounterLanes::kSmtLane)[r] -
                                    prev.lane(simcpu::CounterLanes::kSmtLane)[r];
    const model::FeatureVector scalar =
        model::extract_features(delta, smt_delta, windows[r], kFreq);
    const model::FeatureVector batched = out.row(r);
    for (hpc::EventId id : hpc::all_events()) {
      EXPECT_EQ(model::rate_of(batched.rates, id), model::rate_of(scalar.rates, id))
          << "row " << r << " event " << hpc::to_string(id);
    }
    EXPECT_EQ(batched.smt_shared_cycles_per_sec, scalar.smt_shared_cycles_per_sec)
        << "row " << r;
    if (pids[r] < 0) {
      EXPECT_EQ(batched.utilization,
                model::machine_utilization(scalar.rates, kFreq, kHwThreads));
    } else {
      EXPECT_EQ(batched.utilization,
                ns_to_seconds(cur.cpu_time()[r] - prev.cpu_time()[r]) / windows[r]);
    }
    EXPECT_EQ(out.window_seconds(r), windows[r]);
  }
}

TEST(FeatureBatch, ZeroDeltaWindowYieldsAllZeroFeatures) {
  constexpr std::size_t kRows = 3;
  simcpu::CounterLanes prev, cur;
  prev.resize(kRows);
  cur.resize(kRows);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t l = 0; l < simcpu::CounterLanes::kLanes; ++l) {
      prev.lane(l)[r] = cur.lane(l)[r] = 42'000 + 7 * l + r;
    }
    prev.cpu_time()[r] = cur.cpu_time()[r] = 9'000'000;
  }
  std::vector<double> windows(kRows, 0.025);

  model::FeatureMatrix out;
  out.frequency_hz = 3.3e9;
  out.resize(kRows);
  out.pids()[0] = kMachinePid;
  out.pids()[1] = 5;
  out.pids()[2] = 6;
  model::extract_features_rows(cur, prev, windows.data(), 4, out);

  for (std::size_t r = 0; r < kRows; ++r) {
    const model::FeatureVector row = out.row(r);
    for (hpc::EventId id : hpc::all_events()) {
      EXPECT_EQ(model::rate_of(row.rates, id), 0.0) << "row " << r;
    }
    EXPECT_EQ(row.smt_shared_cycles_per_sec, 0.0);
    EXPECT_EQ(row.utilization, 0.0) << "row " << r;
  }
}

TEST(FeatureBatch, RegressedCountersSaturateToZeroInsteadOfWrapping) {
  simcpu::CounterLanes prev, cur;
  prev.resize(1);
  cur.resize(1);
  for (std::size_t l = 0; l < simcpu::CounterLanes::kLanes; ++l) {
    prev.lane(l)[0] = 3'000'000;  // Pid reuse: new process restarts near zero.
    cur.lane(l)[0] = 50'000;
  }
  const double window = 1.0;
  model::FeatureMatrix out;
  out.frequency_hz = 3.3e9;
  out.resize(1);
  out.pids()[0] = 42;
  model::extract_features_rows(cur, prev, &window, 4, out);
  for (hpc::EventId id : hpc::all_events()) {
    EXPECT_EQ(model::rate_of(out.row(0).rates, id), 0.0)
        << "an unsigned wrap would read ~1.8e19 events/s";
  }
}

// --- HpcSensor: re-prime of one row mid-chunk ---

/// Collects SensorBatch pids per tick, in row order.
class BatchPidCollector final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override {
    const auto* batch = envelope.payload.get<SensorBatch>();
    if (batch == nullptr || !batch->features) return;
    std::vector<std::int64_t> row_pids;
    for (std::size_t i = 0; i < batch->features->rows(); ++i) {
      row_pids.push_back(batch->features->pid(i));
      rates[batch->features->pid(i)] =
          model::rate_of(batch->features->row(i).rates, hpc::EventId::kInstructions);
    }
    batches.push_back(std::move(row_pids));
  }
  std::vector<std::vector<std::int64_t>> batches;
  std::map<std::int64_t, double> rates;  ///< Last instruction rate per pid.
};

class ScriptedBackend final : public hpc::CounterBackend {
 public:
  std::string name() const override { return "scripted"; }
  bool supports(hpc::EventId) const override { return true; }
  util::Result<hpc::EventValues> read(hpc::Target target) override {
    return util::Result<hpc::EventValues>(values[target.pid]);
  }
  std::map<std::int64_t, hpc::EventValues> values;
};

TEST(FeatureBatch, RePrimeMidChunkDropsOnlyTheRegressedRow) {
  actors::ActorSystem actors(actors::ActorSystem::Mode::kManual);
  actors::EventBus bus(actors);
  ScriptedBackend backend;
  constexpr std::int64_t kPidA = 7;
  constexpr std::int64_t kPidB = 8;

  auto collector = std::make_unique<BatchPidCollector>();
  BatchPidCollector& seen = *collector;
  bus.subscribe("sensor:hpc", actors.spawn("collector", std::move(collector)));
  const auto sensor = actors.spawn_as<HpcSensor>(
      "sensor", bus, bus.intern("sensor:hpc"), backend,
      [] { return std::vector<std::int64_t>{kPidA, kPidB}; }, nullptr);

  auto tick = [&](int second, std::uint64_t a, std::uint64_t b) {
    // Machine counters stay monotone throughout — only pid A regresses.
    backend.values[hpc::Target::kMachine][hpc::EventId::kInstructions] =
        static_cast<std::uint64_t>(second) * 10'000'000;
    backend.values[kPidA][hpc::EventId::kInstructions] = a;
    backend.values[kPidB][hpc::EventId::kInstructions] = b;
    sensor.tell(MonitorTick{seconds_to_ns(second)});
    actors.drain();
  };

  tick(1, 1'000'000, 2'000'000);  // Primes all three rows.
  tick(2, 1'500'000, 2'600'000);  // Full batch: machine + A + B.
  ASSERT_EQ(seen.batches.size(), 1u);
  EXPECT_EQ(seen.batches[0],
            (std::vector<std::int64_t>{kMachinePid, kPidA, kPidB}));
  EXPECT_EQ(seen.rates[kPidA], 5e5);
  EXPECT_EQ(seen.rates[kPidB], 6e5);

  // Pid A's counters regress (process died, pid reused) while B and the
  // machine stay monotone: only A's row re-primes and drops out of the
  // batch — the compacted batch must carry the surviving rows' values.
  tick(3, 10'000, 3'300'000);
  ASSERT_EQ(seen.batches.size(), 2u);
  EXPECT_EQ(seen.batches[1], (std::vector<std::int64_t>{kMachinePid, kPidB}));
  EXPECT_EQ(seen.rates[kPidB], 7e5);

  // A's re-primed window completes one tick later, against the new baseline.
  tick(4, 250'000, 3'700'000);
  ASSERT_EQ(seen.batches.size(), 3u);
  EXPECT_EQ(seen.batches[2],
            (std::vector<std::int64_t>{kMachinePid, kPidA, kPidB}));
  EXPECT_EQ(seen.rates[kPidA], 240'000.0);
  EXPECT_EQ(seen.rates[kPidB], 4e5);

  EXPECT_EQ(actors.failures(), 0u);
  actors.shutdown();
}

// --- Fleet chunking: heterogeneous hosts, uneven chunk sizes ---

std::string hex_double(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%a", value);
  return buffer;
}

model::CpuPowerModel chunk_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheMisses};
    f.coefficients = {2.2e-9 * hz / 3.3e9, 1.9e-7};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(30.5, std::move(formulas));
}

simcpu::CpuSpec heterogeneous_spec(std::size_t index) {
  switch (index % 3) {
    case 0: return simcpu::i3_2120();        // 2 cores, SMT.
    case 1: return simcpu::quad_core();      // 4 cores.
    default: return simcpu::i3_2120_no_smt();  // 2 cores, no SMT.
  }
}

/// Runs `host_count` heterogeneous hosts under kManual with the given
/// chunking and serializes every host's per-formula series bit-exactly.
std::string run_chunked_fleet(std::size_t host_count, std::size_t hosts_per_chunk) {
  std::vector<std::unique_ptr<os::System>> hosts;
  for (std::size_t i = 0; i < host_count; ++i) {
    auto host = std::make_unique<os::System>(heterogeneous_spec(i));
    host->spawn("app", std::make_unique<workloads::SteadyBehavior>(
                           workloads::cpu_stress(0.2 + 0.1 * (i % 4)), 0));
    host->spawn("mem", std::make_unique<workloads::SteadyBehavior>(
                           workloads::memory_stress(4e6 * (1 + i % 3), 0.8), 0));
    hosts.push_back(std::move(host));
  }

  FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kManual;
  options.hosts_per_chunk = hosts_per_chunk;
  FleetMonitor fleet(options);
  std::vector<MemoryReporter*> memory;
  for (std::size_t i = 0; i < host_count; ++i) {
    PipelineSpec spec;
    spec.period = ms_to_ns(25);
    spec.model = chunk_model();
    spec.seed = 100 + i;
    const std::size_t index = fleet.add_host(*hosts[i], std::move(spec));
    memory.push_back(&fleet.add_memory_reporter(index));
    fleet.monitor_all(index);
  }
  auto& fleet_memory = fleet.add_fleet_reporter();
  fleet.run_for(ms_to_ns(300));
  fleet.finish();

  std::ostringstream out;
  for (std::size_t i = 0; i < host_count; ++i) {
    for (const char* formula : {"powerapi-hpc", "powerspy"}) {
      for (const auto& row : memory[i]->series(formula)) {
        out << 'h' << i << ',' << formula << ',' << row.timestamp << ','
            << hex_double(row.watts) << '\n';
      }
    }
  }
  for (const auto& row : fleet_memory.group_series("powerapi-hpc", "(fleet)")) {
    out << "fleet," << row.timestamp << ',' << hex_double(row.watts) << '\n';
  }
  return out.str();
}

TEST(FeatureBatch, HeterogeneousCoreCountsInOneChunkMatchPerHostChunking) {
  // Three hosts with different core/SMT counts inside ONE chunk must
  // produce exactly what per-host chunking produces: each host's
  // hw_threads flows through its own batch extraction.
  EXPECT_EQ(run_chunked_fleet(3, 8), run_chunked_fleet(3, 1));
}

TEST(FeatureBatch, ChunkSizeNotDividingFleetIsLossless) {
  // 5 hosts into chunks of 2 leaves a remainder chunk of 1; output must be
  // bit-identical to both per-host chunking and one whole-fleet chunk.
  const std::string by_two = run_chunked_fleet(5, 2);
  EXPECT_EQ(by_two, run_chunked_fleet(5, 1));
  EXPECT_EQ(by_two, run_chunked_fleet(5, 5));
  // Degenerate option value: 0 clamps to 1 instead of dividing by zero.
  EXPECT_EQ(by_two, run_chunked_fleet(5, 0));
}

}  // namespace
}  // namespace powerapi::api
