// Tests for the workload library: behavior combinators, the stress grid,
// the SPECjbb-like benchmark and the SPEC2006-like suite.
#include <gtest/gtest.h>

#include "workloads/behaviors.h"
#include "workloads/spec2006.h"
#include "workloads/specjbb.h"
#include "workloads/stress.h"
#include "workloads/zoo.h"

namespace powerapi::workloads {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

TEST(SteadyBehavior, BoundedRunsForDuration) {
  SteadyBehavior b(cpu_stress(), ms_to_ns(5));
  int ticks = 0;
  while (b.next(0, ms_to_ns(1))) ++ticks;
  EXPECT_EQ(ticks, 5);
}

TEST(SteadyBehavior, UnboundedNeverEnds) {
  SteadyBehavior b(cpu_stress(), 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(b.next(0, ms_to_ns(1)).has_value());
  }
}

TEST(PhasedBehavior, PlaysPhasesInOrder) {
  auto p1 = cpu_stress(0.25);
  auto p2 = cpu_stress(0.75);
  PhasedBehavior b({{p1, ms_to_ns(2)}, {p2, ms_to_ns(3)}}, /*loop=*/false);
  std::vector<double> seen;
  while (const auto p = b.next(0, ms_to_ns(1))) seen.push_back(p->active_fraction);
  ASSERT_EQ(seen.size(), 5u);
  EXPECT_DOUBLE_EQ(seen[0], 0.25);
  EXPECT_DOUBLE_EQ(seen[1], 0.25);
  EXPECT_DOUBLE_EQ(seen[2], 0.75);
  EXPECT_DOUBLE_EQ(seen[4], 0.75);
}

TEST(PhasedBehavior, LoopRepeats) {
  PhasedBehavior b({{cpu_stress(0.1), ms_to_ns(1)}, {cpu_stress(0.9), ms_to_ns(1)}},
                   /*loop=*/true);
  std::vector<double> seen;
  for (int i = 0; i < 6; ++i) seen.push_back(b.next(0, ms_to_ns(1))->active_fraction);
  EXPECT_DOUBLE_EQ(seen[0], 0.1);
  EXPECT_DOUBLE_EQ(seen[1], 0.9);
  EXPECT_DOUBLE_EQ(seen[2], 0.1);
  EXPECT_DOUBLE_EQ(seen[5], 0.9);
}

TEST(PhasedBehavior, RejectsEmptyOrZeroPhases) {
  EXPECT_THROW(PhasedBehavior({}, false), std::invalid_argument);
  EXPECT_THROW(PhasedBehavior({{cpu_stress(), 0}}, false), std::invalid_argument);
}

TEST(JitterBehavior, PerturbsButClampsFields) {
  auto inner = std::make_unique<SteadyBehavior>(memory_stress(1e7, 0.9), 0);
  JitterBehavior b(std::move(inner), util::Rng(5));
  bool saw_difference = false;
  for (int i = 0; i < 200; ++i) {
    const auto p = b.next(0, ms_to_ns(1));
    ASSERT_TRUE(p.has_value());
    EXPECT_GE(p->active_fraction, 0.0);
    EXPECT_LE(p->active_fraction, 1.0);
    EXPECT_GE(p->intrinsic_miss_ratio, 0.0);
    EXPECT_LE(p->intrinsic_miss_ratio, 1.0);
    if (std::abs(p->active_fraction - 0.9) > 1e-6) saw_difference = true;
  }
  EXPECT_TRUE(saw_difference);
}

TEST(BurstyBehavior, AlternatesBurstsAndGaps) {
  BurstyBehavior b(cpu_stress(), ms_to_ns(5), ms_to_ns(5), seconds_to_ns(2), util::Rng(7));
  int active = 0;
  int idle = 0;
  while (const auto p = b.next(0, ms_to_ns(1))) {
    (p->active_fraction > 0 ? active : idle)++;
  }
  EXPECT_GT(active, 100);  // Roughly half of 2000 ticks each.
  EXPECT_GT(idle, 100);
  EXPECT_NEAR(static_cast<double>(active) / (active + idle), 0.5, 0.2);
}

TEST(BurstyBehavior, RejectsBadDurations) {
  EXPECT_THROW(BurstyBehavior(cpu_stress(), 0, 1, 1, util::Rng(1)), std::invalid_argument);
  EXPECT_THROW(BurstyBehavior(cpu_stress(), 1, -1, 1, util::Rng(1)), std::invalid_argument);
}

TEST(Stress, ProfilesHaveExpectedCharacter) {
  const auto cpu = cpu_stress();
  const auto mem = memory_stress(32.0 * 1024 * 1024);
  EXPECT_LT(cpu.cache_refs_per_kinstr, mem.cache_refs_per_kinstr);
  EXPECT_LT(cpu.working_set_bytes, mem.working_set_bytes);
  EXPECT_LT(cpu.cpi_base, mem.cpi_base);
  const auto branchy = branchy_stress();
  EXPECT_GT(branchy.branch_miss_ratio, cpu.branch_miss_ratio * 5);
  EXPECT_DOUBLE_EQ(idle_profile().active_fraction, 0.0);
}

TEST(Stress, MixedInterpolates) {
  const auto half = mixed_stress(0.5, 16e6);
  const auto cpu = cpu_stress();
  const auto mem = memory_stress(16e6);
  EXPECT_GT(half.cache_refs_per_kinstr, cpu.cache_refs_per_kinstr);
  EXPECT_LT(half.cache_refs_per_kinstr, mem.cache_refs_per_kinstr);
  // Intensity clamps.
  EXPECT_DOUBLE_EQ(cpu_stress(2.0).active_fraction, 1.0);
  EXPECT_DOUBLE_EQ(cpu_stress(-1.0).active_fraction, 0.0);
}

TEST(Stress, GridCoversAxesWithoutRedundantCells) {
  StressGridOptions options;
  const auto grid = make_stress_grid(options);
  EXPECT_GT(grid.size(), 50u);
  // Pure-ALU cells must appear once per (intensity, threads), not per ws.
  int pure_alu = 0;
  for (const auto& point : grid) {
    if (point.name.find("/m0/") != std::string::npos) ++pure_alu;
    EXPECT_GE(point.threads, 1u);
    EXPECT_FALSE(point.name.empty());
  }
  EXPECT_EQ(pure_alu, static_cast<int>(options.intensities.size() *
                                       options.thread_counts.size()));
  // Branchy cells are present for the branch-unit dimension.
  bool has_branchy = false;
  for (const auto& point : grid) {
    if (point.name.find("branchy") != std::string::npos) has_branchy = true;
  }
  EXPECT_TRUE(has_branchy);
}

TEST(Stress, MaterializeYieldsRequestedThreads) {
  StressPoint point;
  point.profile = cpu_stress();
  point.threads = 3;
  auto behaviors = materialize(point, ms_to_ns(10));
  EXPECT_EQ(behaviors.size(), 3u);
}

TEST(SpecJbb, DurationMatchesPhases) {
  SpecJbbOptions options;
  const auto total = specjbb_duration(options);
  EXPECT_EQ(total, options.warmup +
                       static_cast<util::DurationNs>(options.staircase_steps) *
                           options.staircase_step +
                       options.search_phase + options.cooldown);
}

TEST(SpecJbb, StaircaseRampsInjection) {
  SpecJbbOptions options;
  options.backend_threads = 1;
  options.warmup = ms_to_ns(10);
  options.staircase_step = ms_to_ns(10);
  options.search_phase = ms_to_ns(20);
  options.cooldown = ms_to_ns(10);
  auto threads = make_specjbb(options, util::Rng(3));
  ASSERT_EQ(threads.size(), 1u);
  // Average duty over the early staircase must be below the late staircase.
  auto& b = *threads[0];
  double early = 0;
  double late = 0;
  for (int t = 0; t < 110; ++t) {
    const auto p = b.next(0, ms_to_ns(1));
    ASSERT_TRUE(p.has_value());
    if (t >= 10 && t < 40) early += p->active_fraction;
    if (t >= 80 && t < 110) late += p->active_fraction;
  }
  EXPECT_LT(early, late * 0.6);
}

TEST(SpecJbb, TerminatesAfterDuration) {
  SpecJbbOptions options;
  options.backend_threads = 2;
  options.warmup = ms_to_ns(5);
  options.staircase_step = ms_to_ns(2);
  options.search_phase = ms_to_ns(10);
  options.cooldown = ms_to_ns(5);
  auto threads = make_specjbb(options, util::Rng(4));
  const auto total = specjbb_duration(options);
  for (auto& thread : threads) {
    util::DurationNs elapsed = 0;
    while (thread->next(elapsed, ms_to_ns(1))) {
      elapsed += ms_to_ns(1);
      ASSERT_LE(elapsed, total + ms_to_ns(5));
    }
  }
}

TEST(Spec2006, SuiteHasSixDistinctApps) {
  const auto suite = spec2006_suite();
  ASSERT_EQ(suite.size(), 6u);
  for (std::size_t i = 0; i < suite.size(); ++i) {
    for (std::size_t j = i + 1; j < suite.size(); ++j) {
      EXPECT_NE(suite[i].name, suite[j].name);
    }
  }
  EXPECT_NO_THROW(spec2006_app(suite, "mcf-like"));
  EXPECT_THROW(spec2006_app(suite, "doom-like"), std::invalid_argument);
}

TEST(Spec2006, McfIsMemoryBoundPerlbenchIsNot) {
  const auto suite = spec2006_suite();
  const auto& mcf = spec2006_app(suite, "mcf-like");
  const auto& perl = spec2006_app(suite, "perlbench-like");
  EXPECT_GT(mcf.cache_refs_per_kinstr, 10 * perl.cache_refs_per_kinstr);
  EXPECT_GT(mcf.working_set_bytes, perl.working_set_bytes);
  EXPECT_GT(perl.branches_per_kinstr, mcf.branches_per_kinstr);
}

TEST(Spec2006, MadeBehaviorRunsBounded) {
  const auto suite = spec2006_suite();
  auto b = suite[0].make(ms_to_ns(20), util::Rng(9));
  int ticks = 0;
  while (b->next(0, ms_to_ns(1))) ++ticks;
  EXPECT_GE(ticks, 19);
  EXPECT_LE(ticks, 21);
}

TEST(BackgroundDaemon, HasTinyDutyCycle) {
  auto daemon = make_background_daemon(util::Rng(11));
  double duty = 0;
  const int ticks = 5000;
  for (int i = 0; i < ticks; ++i) {
    const auto p = daemon->next(0, ms_to_ns(1));
    ASSERT_TRUE(p.has_value());
    duty += p->active_fraction;
  }
  EXPECT_LT(duty / ticks, 0.2);
  EXPECT_GT(duty / ticks, 0.005);
}

// --- Workload zoo ---

TEST(LlmInference, AlternatesPrefillAndDecodeSignatures) {
  LlmInferenceBehavior::Options options;
  options.mean_interarrival = ms_to_ns(100);
  LlmInferenceBehavior b(options, util::Rng(7));
  int prefill = 0;
  int decode = 0;
  int idle = 0;
  util::TimestampNs now = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto p = b.next(now, ms_to_ns(1));
    ASSERT_TRUE(p.has_value());  // Unbounded: always returns a profile.
    now += ms_to_ns(1);
    if (p->active_fraction <= 0.0) {
      ++idle;
    } else if (p->cpi_base < 1.0) {
      ++prefill;  // Compute-saturated: low CPI, prefetch-friendly.
      EXPECT_LT(p->intrinsic_miss_ratio, 0.2);
    } else {
      ++decode;  // Memory-latency-bound: high CPI, frequent misses.
      EXPECT_GT(p->intrinsic_miss_ratio, 0.2);
    }
  }
  EXPECT_GT(prefill, 0);
  EXPECT_GT(decode, 0);
  EXPECT_GT(idle, 0);
  // Decode dominates prefill in time (250 ms vs 60 ms mean stages).
  EXPECT_GT(decode, prefill);
}

TEST(LlmInference, DeterministicGivenSeedAndBounded) {
  LlmInferenceBehavior::Options options;
  options.duration = ms_to_ns(500);
  LlmInferenceBehavior a(options, util::Rng(42));
  LlmInferenceBehavior b(options, util::Rng(42));
  int ticks = 0;
  for (;; ++ticks) {
    const auto pa = a.next(ticks * ms_to_ns(1), ms_to_ns(1));
    const auto pb = b.next(ticks * ms_to_ns(1), ms_to_ns(1));
    ASSERT_EQ(pa.has_value(), pb.has_value());
    if (!pa) break;
    ASSERT_DOUBLE_EQ(pa->cpi_base, pb->cpi_base);
    ASSERT_DOUBLE_EQ(pa->active_fraction, pb->active_fraction);
    ASSERT_EQ(a.queue_depth(), b.queue_depth());
  }
  EXPECT_EQ(ticks, 500);
}

TEST(Diurnal, LoadFollowsTheSinusoidBetweenValleyAndPeak) {
  DiurnalBehavior::Options options;
  options.peak_profile = cpu_stress(1.0);
  options.period = seconds_to_ns(10);
  options.mean_flash_interarrival = 0;  // Disable flash crowds.
  DiurnalBehavior b(options, util::Rng(3));
  double lo = 1e9;
  double hi = -1e9;
  for (int i = 0; i <= 1000; ++i) {
    const double load = b.load_at(i * ms_to_ns(10));
    EXPECT_GE(load, options.valley_load - 1e-12);
    EXPECT_LE(load, options.peak_load + 1e-12);
    lo = std::min(lo, load);
    hi = std::max(hi, load);
  }
  EXPECT_NEAR(lo, options.valley_load, 1e-6);  // Night valley reached...
  EXPECT_NEAR(hi, options.peak_load, 1e-6);    // ...and the midday peak.
  // The valley sits at the start of the period, the peak half-way through.
  EXPECT_NEAR(b.load_at(0), options.valley_load, 1e-6);
  EXPECT_NEAR(b.load_at(seconds_to_ns(5)), options.peak_load, 1e-6);
}

TEST(Diurnal, PhaseOffsetRotatesTheDay) {
  DiurnalBehavior::Options base;
  base.peak_profile = cpu_stress(1.0);
  base.period = seconds_to_ns(10);
  base.mean_flash_interarrival = 0;
  DiurnalBehavior::Options shifted = base;
  shifted.phase_offset = seconds_to_ns(5);
  DiurnalBehavior a(base, util::Rng(3));
  DiurnalBehavior b(shifted, util::Rng(3));
  // Half a period apart: b's valley lands on a's peak.
  EXPECT_NEAR(b.load_at(0), a.load_at(seconds_to_ns(5)), 1e-9);
  EXPECT_NEAR(b.load_at(seconds_to_ns(5)), a.load_at(0), 1e-9);
}

TEST(Diurnal, FlashCrowdsBoostLoadButStayClamped) {
  DiurnalBehavior::Options options;
  options.peak_profile = cpu_stress(1.0);
  options.period = seconds_to_ns(10);
  options.mean_flash_interarrival = seconds_to_ns(2);
  options.mean_flash_duration = seconds_to_ns(1);
  DiurnalBehavior with_flash(options, util::Rng(11));
  options.mean_flash_interarrival = 0;
  DiurnalBehavior without(options, util::Rng(11));
  double extra = 0.0;
  for (int i = 0; i < 3000; ++i) {
    const util::TimestampNs now = i * ms_to_ns(10);
    // next() advances the flash process; load_at reads the current state.
    ASSERT_TRUE(with_flash.next(now, ms_to_ns(10)).has_value());
    ASSERT_TRUE(without.next(now, ms_to_ns(10)).has_value());
    const double lf = with_flash.load_at(now);
    const double lb = without.load_at(now);
    EXPECT_LE(lf, 1.0 + 1e-12);  // Load factor never exceeds saturation.
    extra += lf - lb;
  }
  EXPECT_GT(extra, 0.0);  // Flash crowds added load somewhere in the run.
}

TEST(Zoo, FactoriesProduceWorkingBehaviors) {
  auto llm = make_llm_inference({}, util::Rng(1));
  auto diurnal = make_diurnal({.peak_profile = cpu_stress(1.0)}, util::Rng(2));
  EXPECT_TRUE(llm->next(0, ms_to_ns(1)).has_value());
  EXPECT_TRUE(diurnal->next(0, ms_to_ns(1)).has_value());
}

}  // namespace
}  // namespace powerapi::workloads
