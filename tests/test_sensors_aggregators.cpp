// Unit tests for the pipeline actors in isolation: sensors driven by
// hand-crafted MonitorTicks, formulas fed synthetic SensorReports, and the
// aggregator's watermark/flush semantics — complementing the end-to-end
// PowerMeter tests with message-level checks.
#include <gtest/gtest.h>

#include <any>
#include <memory>

#include "actors/actor_system.h"
#include "actors/event_bus.h"
#include "hpc/sim_backend.h"
#include "os/system.h"
#include "powerapi/aggregators.h"
#include "powerapi/formulas.h"
#include "powerapi/reporters.h"
#include "powerapi/sensors.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi::api {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

/// Collects raw payloads of one type from a topic.
template <typename T>
class Collector final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override {
    if (const T* value = envelope.payload.get<T>()) {
      items.push_back(*value);
    }
  }
  std::vector<T> items;
};

/// Flattens each SensorBatch into per-row SensorReports (the pre-SoA shape)
/// so window-semantics assertions stay row-level.
class BatchRowCollector final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override {
    const auto* batch = envelope.payload.get<SensorBatch>();
    if (batch == nullptr || !batch->features) return;
    for (std::size_t i = 0; i < batch->features->rows(); ++i) {
      SensorReport row;
      static_cast<model::FeatureVector&>(row) = batch->features->row(i);
      row.timestamp = batch->timestamp;
      row.pid = batch->features->pid(i);
      row.sensor = batch->sensor;
      row.window_seconds = batch->features->window_seconds(i);
      row.seq = batch->seq;
      row.tick_wall_ns = batch->tick_wall_ns;
      items.push_back(row);
    }
  }
  std::vector<SensorReport> items;
};

struct PipelineHarness {
  PipelineHarness() : actors(actors::ActorSystem::Mode::kManual), bus(actors) {}

  /// Stop actors while the bus is still alive: post_stop hooks (e.g. the
  /// aggregator's flush) may publish.
  ~PipelineHarness() { actors.shutdown(); }

  template <typename T>
  Collector<T>& collect(const std::string& topic) {
    auto owned = std::make_unique<Collector<T>>();
    Collector<T>& ref = *owned;
    bus.subscribe(topic, actors.spawn("collector", std::move(owned)));
    return ref;
  }

  BatchRowCollector& collect_batch_rows(const std::string& topic) {
    auto owned = std::make_unique<BatchRowCollector>();
    BatchRowCollector& ref = *owned;
    bus.subscribe(topic, actors.spawn("collector", std::move(owned)));
    return ref;
  }

  actors::ActorSystem actors;
  actors::EventBus bus;
};

// --- HpcSensor ---

TEST(HpcSensor, FirstTickPrimesSecondTickReports) {
  os::System system(simcpu::i3_2120());
  system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                          workloads::cpu_stress(), 0));
  PipelineHarness h;
  hpc::SimBackend backend(system);
  auto& reports = h.collect_batch_rows("sensor:hpc");
  const auto sensor = h.actors.spawn_as<HpcSensor>(
      "sensor", h.bus, h.bus.intern("sensor:hpc"), backend,
      [] { return std::vector<std::int64_t>{}; }, &system);

  system.run_for(ms_to_ns(10));
  sensor.tell(MonitorTick{system.now_ns()});
  h.actors.drain();
  EXPECT_TRUE(reports.items.empty());  // Priming tick: no window yet.

  system.run_for(ms_to_ns(10));
  sensor.tell(MonitorTick{system.now_ns()});
  h.actors.drain();
  ASSERT_EQ(reports.items.size(), 1u);  // Machine scope only.
  const SensorReport& r = reports.items[0];
  EXPECT_EQ(r.pid, kMachinePid);
  EXPECT_EQ(r.sensor, SensorKind::kHpc);
  EXPECT_NEAR(r.window_seconds, 0.010, 1e-9);
  EXPECT_GT(model::rate_of(r.rates, hpc::EventId::kInstructions), 0.0);
  EXPECT_GT(r.utilization, 0.0);
  EXPECT_DOUBLE_EQ(r.frequency_hz, 3.3e9);
}

TEST(HpcSensor, ReportsEachMonitoredPidAndForgetsDeadOnes) {
  os::System system(simcpu::i3_2120());
  const os::Pid pid = system.spawn(
      "app", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(), 0));
  PipelineHarness h;
  hpc::SimBackend backend(system);
  auto& reports = h.collect_batch_rows("sensor:hpc");
  std::vector<std::int64_t> targets = {pid};
  const auto sensor = h.actors.spawn_as<HpcSensor>(
      "sensor", h.bus, h.bus.intern("sensor:hpc"), backend,
      [&targets] { return targets; }, &system);

  for (int i = 0; i < 3; ++i) {
    system.run_for(ms_to_ns(10));
    sensor.tell(MonitorTick{system.now_ns()});
    h.actors.drain();
  }
  // 2 reporting ticks x (machine + pid).
  ASSERT_EQ(reports.items.size(), 4u);
  int pid_rows = 0;
  for (const auto& r : reports.items) {
    if (r.pid == pid) ++pid_rows;
  }
  EXPECT_EQ(pid_rows, 2);

  // Kill the process and drop it from the target list (as monitor_all's
  // dynamic provider does): the sensor must keep going without failing.
  system.kill(pid);
  targets.clear();
  reports.items.clear();
  system.run_for(ms_to_ns(10));
  sensor.tell(MonitorTick{system.now_ns()});
  h.actors.drain();
  ASSERT_EQ(reports.items.size(), 1u);
  EXPECT_EQ(reports.items[0].pid, kMachinePid);
  EXPECT_EQ(h.actors.failures(), 0u);
}

TEST(HpcSensor, IgnoresNonTickPayloadsAndStaleTimestamps) {
  os::System system(simcpu::i3_2120());
  PipelineHarness h;
  hpc::SimBackend backend(system);
  auto& reports = h.collect_batch_rows("sensor:hpc");
  const auto sensor = h.actors.spawn_as<HpcSensor>(
      "sensor", h.bus, h.bus.intern("sensor:hpc"), backend,
      [] { return std::vector<std::int64_t>{}; }, &system);

  sensor.tell(std::string("not a tick"));
  h.actors.drain();
  EXPECT_TRUE(reports.items.empty());

  system.run_for(ms_to_ns(5));
  sensor.tell(MonitorTick{system.now_ns()});  // Prime.
  sensor.tell(MonitorTick{system.now_ns()});  // Same timestamp: no window.
  h.actors.drain();
  EXPECT_TRUE(reports.items.empty());
  EXPECT_EQ(h.actors.failures(), 0u);
}

// --- RegressionFormula ---

TEST(RegressionFormula, MachineRowsGetIdleProcessRowsDoNot) {
  PipelineHarness h;
  model::FrequencyFormula f;
  f.frequency_hz = 3.3e9;
  f.events = {hpc::EventId::kInstructions};
  f.coefficients = {2e-9};
  model::CpuPowerModel model(30.0, {f});
  const auto registry = std::make_shared<model::ModelRegistry>(std::move(model));
  const auto formula = h.actors.spawn_as<RegressionFormula>(
      "formula", h.bus, h.bus.intern("power:estimate"), registry);
  auto& estimates = h.collect<PowerEstimate>("power:estimate");

  SensorReport machine;
  machine.sensor = SensorKind::kHpc;
  machine.pid = kMachinePid;
  machine.frequency_hz = 3.3e9;
  model::set_rate(machine.rates, hpc::EventId::kInstructions, 1e9);
  formula.tell(machine);

  SensorReport process = machine;
  process.pid = 42;
  formula.tell(process);

  // A non-hpc report must be ignored.
  SensorReport io = machine;
  io.sensor = SensorKind::kIo;
  formula.tell(io);

  h.actors.drain();
  ASSERT_EQ(estimates.items.size(), 2u);
  EXPECT_NEAR(estimates.items[0].watts, 30.0 + 2.0, 1e-9);  // Idle + activity.
  EXPECT_EQ(estimates.items[1].pid, 42);
  EXPECT_NEAR(estimates.items[1].watts, 2.0, 1e-9);  // Activity only.
}

// --- Aggregator watermark semantics ---

PowerEstimate estimate_of(util::TimestampNs t, std::int64_t pid, double watts,
                          const char* formula = "powerapi-hpc") {
  PowerEstimate e;
  e.timestamp = t;
  e.pid = pid;
  e.formula = formula;
  e.watts = watts;
  return e;
}

TEST(AggregatorUnit, TimestampModeEmitsOnWatermarkAdvance) {
  PipelineHarness h;
  const auto agg = h.actors.spawn_as<Aggregator>(
      "agg", h.bus, h.bus.intern("power:aggregated"), AggregationDimension::kTimestamp);
  auto& rows = h.collect<AggregatedPower>("power:aggregated");

  agg.tell(estimate_of(100, 1, 3.0));
  agg.tell(estimate_of(100, 2, 4.0));
  h.actors.drain();
  EXPECT_TRUE(rows.items.empty());  // Group still open.

  agg.tell(estimate_of(200, 1, 5.0));  // Watermark advances: t=100 emits.
  h.actors.drain();
  ASSERT_EQ(rows.items.size(), 1u);
  EXPECT_EQ(rows.items[0].timestamp, 100);
  EXPECT_NEAR(rows.items[0].watts, 7.0, 1e-12);  // Sum of per-pid rows.
}

TEST(AggregatorUnit, MachineRowWinsOverPerPidSum) {
  PipelineHarness h;
  const auto agg = h.actors.spawn_as<Aggregator>(
      "agg", h.bus, h.bus.intern("power:aggregated"), AggregationDimension::kTimestamp);
  auto& rows = h.collect<AggregatedPower>("power:aggregated");
  agg.tell(estimate_of(100, 1, 3.0));
  agg.tell(estimate_of(100, kMachinePid, 40.0));  // Includes idle.
  agg.tell(estimate_of(200, 1, 1.0));
  h.actors.drain();
  ASSERT_EQ(rows.items.size(), 1u);
  EXPECT_NEAR(rows.items[0].watts, 40.0, 1e-12);
}

TEST(AggregatorUnit, FormulasAggregateIndependently) {
  PipelineHarness h;
  const auto agg = h.actors.spawn_as<Aggregator>(
      "agg", h.bus, h.bus.intern("power:aggregated"), AggregationDimension::kTimestamp);
  auto& rows = h.collect<AggregatedPower>("power:aggregated");
  agg.tell(estimate_of(100, 1, 3.0, "a"));
  agg.tell(estimate_of(100, 1, 9.0, "b"));
  agg.tell(estimate_of(200, 1, 1.0, "a"));  // Only formula a's watermark moves.
  h.actors.drain();
  ASSERT_EQ(rows.items.size(), 1u);
  EXPECT_EQ(rows.items[0].formula, "a");
  EXPECT_NEAR(rows.items[0].watts, 3.0, 1e-12);
}

TEST(AggregatorUnit, StopFlushesPendingGroups) {
  PipelineHarness h;
  const auto agg = h.actors.spawn_as<Aggregator>(
      "agg", h.bus, h.bus.intern("power:aggregated"), AggregationDimension::kTimestamp);
  auto& rows = h.collect<AggregatedPower>("power:aggregated");
  agg.tell(estimate_of(100, 1, 3.0, "a"));
  agg.tell(estimate_of(100, 1, 9.0, "b"));
  h.actors.drain();
  h.actors.stop(agg);  // post_stop flush.
  h.actors.drain();
  EXPECT_EQ(rows.items.size(), 2u);
}

TEST(AggregatorUnit, GroupModeRoutesByResolver) {
  PipelineHarness h;
  Aggregator::GroupResolver resolver = [](std::int64_t pid) {
    return pid < 10 ? "small" : "large";
  };
  const auto agg = h.actors.spawn_as<Aggregator>(
      "agg", h.bus, h.bus.intern("power:aggregated"), AggregationDimension::kGroup,
      resolver);
  auto& rows = h.collect<AggregatedPower>("power:aggregated");

  agg.tell(estimate_of(100, 1, 1.0));
  agg.tell(estimate_of(100, 2, 2.0));
  agg.tell(estimate_of(100, 20, 7.0));
  agg.tell(estimate_of(100, kMachinePid, 50.0));
  agg.tell(estimate_of(200, 1, 1.0));  // Advance watermark.
  h.actors.drain();

  ASSERT_EQ(rows.items.size(), 3u);  // small, large, (machine).
  double small = 0;
  double large = 0;
  double machine = 0;
  for (const auto& row : rows.items) {
    if (row.group == "small") small = row.watts;
    if (row.group == "large") large = row.watts;
    if (row.group == "(machine)") machine = row.watts;
  }
  EXPECT_NEAR(small, 3.0, 1e-12);
  EXPECT_NEAR(large, 7.0, 1e-12);
  EXPECT_NEAR(machine, 50.0, 1e-12);
}

// --- IoFormula unit ---

TEST(IoFormulaUnit, ChargesDatasheetEnergies) {
  PipelineHarness h;
  periph::DiskParams disk;
  periph::NicParams nic;
  const auto formula = h.actors.spawn_as<IoFormula>(
      "formula", h.bus, h.bus.intern("power:estimate"), disk, nic);
  auto& estimates = h.collect<PowerEstimate>("power:estimate");

  SensorReport report;
  report.sensor = SensorKind::kIo;
  report.pid = kMachinePid;
  report.disk_iops = 50;
  report.disk_bytes_per_sec = 10e6;
  report.net_bytes_per_sec = 20e6;
  formula.tell(report);
  h.actors.drain();

  ASSERT_EQ(estimates.items.size(), 1u);
  const double expected =
      disk.idle_spinning_watts + nic.link_active_watts + 50 * disk.joules_per_op +
      10 * disk.joules_per_megabyte +
      20 * (nic.joules_per_megabyte_tx + nic.joules_per_megabyte_rx) / 2.0;
  EXPECT_NEAR(estimates.items[0].watts, expected, 1e-9);
  EXPECT_EQ(estimates.items[0].formula, "io-datasheet");
}

}  // namespace
}  // namespace powerapi::api
