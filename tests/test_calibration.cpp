// Online calibration: the learn→deploy loop inside a running pipeline.
//
// A deliberately distorted model drifts against the PowerSpy ground truth;
// the CalibrationActor must detect it, refit from paired samples and swap
// the registry — after which the "powerapi-hpc" estimates carry a newer
// model version and sit measurably closer to the meter. kManual runs are
// bit-deterministic; the threaded fleet variant is the TSan target.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <stdexcept>
#include <vector>

#include "os/system.h"
#include "powerapi/calibration.h"
#include "powerapi/fleet_monitor.h"
#include "powerapi/power_meter.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi::api {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

/// Collects raw payloads of one type from a topic.
template <typename T>
class Collector final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override {
    if (const T* value = envelope.payload.get<T>()) items.push_back(*value);
  }
  std::vector<T> items;
};

/// Collects "power:estimate" traffic, flattening EstimateBatch rows into
/// the scalar PowerEstimate shape the assertions use.
class EstimateCollector final : public actors::Actor {
 public:
  void receive(actors::Envelope& envelope) override {
    if (const auto* estimate = envelope.payload.get<PowerEstimate>()) {
      items.push_back(*estimate);
      return;
    }
    const auto* batch = envelope.payload.get<EstimateBatch>();
    if (batch == nullptr || !batch->features) return;
    for (std::size_t i = 0; i < batch->features->rows() && i < batch->watts.size();
         ++i) {
      PowerEstimate row;
      row.timestamp = batch->timestamp;
      row.pid = batch->features->pid(i);
      row.formula = batch->formula;
      row.model_version = batch->model_version;
      row.watts = batch->watts[i];
      row.seq = batch->seq;
      row.tick_wall_ns = batch->tick_wall_ns;
      items.push_back(row);
    }
  }
  std::vector<PowerEstimate> items;
};

/// A model whose structure matches the machine but whose coefficients are
/// scaled by `distortion` — the "shipped profile gone stale" scenario.
model::CpuPowerModel scaled_model(double distortion) {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events.assign(hpc::paper_events().begin(), hpc::paper_events().end());
    f.coefficients = std::vector<double>(f.events.size(), 0.0);
    const double scale = distortion * hz / 3.3e9;
    f.coefficients[0] = 2.2e-9 * scale;
    f.coefficients[1] = 2.5e-8 * scale;
    f.coefficients[2] = 1.9e-7 * scale;
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(31.48, std::move(formulas));
}

std::unique_ptr<os::System> busy_host() {
  auto host = std::make_unique<os::System>(simcpu::i3_2120());
  host->spawn("app", std::make_unique<workloads::SteadyBehavior>(
                         workloads::mixed_stress(0.7, 8.0 * 1024 * 1024, 0.9), 0));
  host->spawn("mem", std::make_unique<workloads::SteadyBehavior>(
                         workloads::memory_stress(6e6), 0));
  host->run_for(ms_to_ns(10));
  return host;
}

PowerMeter::Config calibrating_config() {
  PowerMeter::Config config;
  config.period = ms_to_ns(100);
  config.with_powerspy = true;
  config.with_calibration = true;
  config.calibration.min_samples_per_fit = 12;
  config.calibration.drift_window = 8;
  config.calibration.drift_threshold_watts = 1.0;
  config.calibration.min_refit_interval = seconds_to_ns(1);
  return config;
}

struct CalibratedRun {
  std::vector<ModelUpdated> swaps;
  std::vector<PowerEstimate> estimates;  ///< Raw "power:estimate" traffic.
};

CalibratedRun run_calibrated(double distortion, util::DurationNs duration,
                             PowerMeter::Config config = calibrating_config()) {
  auto host = busy_host();
  PowerMeter meter(*host, scaled_model(distortion), std::move(config));

  CalibratedRun run;
  meter.pipeline().add_model_update_callback(
      [&run](const ModelUpdated& update) { run.swaps.push_back(update); });
  auto collector = std::make_unique<EstimateCollector>();
  EstimateCollector& estimates = *collector;
  meter.bus().subscribe("power:estimate",
                        meter.actor_system().spawn("collector", std::move(collector)));

  meter.run_for(duration);
  meter.finish();
  run.estimates = estimates.items;
  return run;
}

TEST(Calibration, DriftTriggersSwapAndReducesError) {
  const auto run = run_calibrated(/*distortion=*/4.0, seconds_to_ns(10));
  ASSERT_FALSE(run.swaps.empty()) << "distorted model never triggered a refit";
  EXPECT_GE(run.swaps.front().version, 2u);
  EXPECT_GT(run.swaps.front().pre_swap_error_watts, 1.0);
  EXPECT_GE(run.swaps.front().samples_used, 12u);
  EXPECT_GE(run.swaps.front().bins_refit, 1u);

  // Pair the regression estimates with the meter per timestamp and compare
  // the error of version-1 (pre-swap) rows against post-swap rows.
  std::map<util::TimestampNs, double> truth;
  for (const auto& e : run.estimates) {
    if (e.formula == "powerspy") truth[e.timestamp] = e.watts;
  }
  double pre_error = 0.0, post_error = 0.0;
  std::size_t pre_n = 0, post_n = 0;
  for (const auto& e : run.estimates) {
    if (e.formula != "powerapi-hpc" || e.pid != kMachinePid) continue;
    const auto it = truth.find(e.timestamp);
    if (it == truth.end()) continue;
    const double error = std::abs(e.watts - it->second);
    if (e.model_version <= 1) {
      pre_error += error;
      ++pre_n;
    } else {
      post_error += error;
      ++post_n;
    }
  }
  ASSERT_GT(pre_n, 0u);
  ASSERT_GT(post_n, 0u);
  EXPECT_LT(post_error / static_cast<double>(post_n),
            pre_error / static_cast<double>(pre_n));
}

TEST(Calibration, EstimatesCarryTheModelVersionThatProducedThem) {
  const auto run = run_calibrated(/*distortion=*/4.0, seconds_to_ns(10));
  ASSERT_FALSE(run.swaps.empty());
  const util::TimestampNs swap_at = run.swaps.front().timestamp;
  for (const auto& e : run.estimates) {
    if (e.formula != "powerapi-hpc") continue;
    // The swap tick itself is ambiguous (estimate and swap race within one
    // drain); every other tick must be on the right side of the boundary.
    if (e.timestamp < swap_at) {
      EXPECT_EQ(e.model_version, 1u) << "t=" << e.timestamp;
    } else if (e.timestamp > swap_at) {
      EXPECT_GE(e.model_version, 2u) << "t=" << e.timestamp;
    }
  }
  // Meter pass-through estimates never claim a model version.
  for (const auto& e : run.estimates) {
    if (e.formula == "powerspy") EXPECT_EQ(e.model_version, 0u);
  }
}

TEST(Calibration, WarmupGateHoldsBackUnderdeterminedFits) {
  auto config = calibrating_config();
  config.calibration.min_samples_per_fit = 100000;  // Never enough samples.
  const auto run = run_calibrated(/*distortion=*/4.0, seconds_to_ns(5), config);
  EXPECT_TRUE(run.swaps.empty());
  for (const auto& e : run.estimates) {
    if (e.formula == "powerapi-hpc") EXPECT_EQ(e.model_version, 1u);
  }
}

TEST(Calibration, DriftThresholdGatesRefits) {
  // With the tolerance set above any plausible error, even a grossly
  // distorted model is left alone: drift detection, not sample count, is
  // what pulls the trigger.
  auto config = calibrating_config();
  config.calibration.drift_threshold_watts = 1e6;
  const auto run = run_calibrated(/*distortion=*/4.0, seconds_to_ns(5), config);
  EXPECT_TRUE(run.swaps.empty());
  for (const auto& e : run.estimates) {
    if (e.formula == "powerapi-hpc") EXPECT_EQ(e.model_version, 1u);
  }
}

TEST(Calibration, ManualModeIsDeterministicAcrossRuns) {
  const auto first = run_calibrated(/*distortion=*/4.0, seconds_to_ns(8));
  const auto second = run_calibrated(/*distortion=*/4.0, seconds_to_ns(8));
  ASSERT_EQ(first.swaps.size(), second.swaps.size());
  for (std::size_t i = 0; i < first.swaps.size(); ++i) {
    EXPECT_EQ(first.swaps[i].timestamp, second.swaps[i].timestamp);
    EXPECT_EQ(first.swaps[i].version, second.swaps[i].version);
    EXPECT_DOUBLE_EQ(first.swaps[i].pre_swap_error_watts,
                     second.swaps[i].pre_swap_error_watts);
  }
  ASSERT_EQ(first.estimates.size(), second.estimates.size());
  for (std::size_t i = 0; i < first.estimates.size(); ++i) {
    EXPECT_EQ(first.estimates[i].timestamp, second.estimates[i].timestamp);
    EXPECT_EQ(first.estimates[i].model_version, second.estimates[i].model_version);
    EXPECT_DOUBLE_EQ(first.estimates[i].watts, second.estimates[i].watts);
  }
}

TEST(Calibration, ThreadedFleetCalibratesEveryHostIndependently) {
  // The TSan target: registry swaps race against formula reads across a
  // work-stealing dispatcher. Each host owns a private registry (spec.model
  // is wrapped per pipeline), so versions advance per host.
  constexpr std::size_t kHosts = 4;
  std::vector<std::unique_ptr<os::System>> hosts;
  for (std::size_t i = 0; i < kHosts; ++i) hosts.push_back(busy_host());

  FleetMonitor::Options options;
  options.mode = actors::ActorSystem::Mode::kThreaded;
  options.workers = 4;
  FleetMonitor fleet(options);
  for (auto& host : hosts) {
    PipelineSpec spec = calibrating_config();
    spec.model = scaled_model(4.0);
    fleet.add_host(*host, spec);
  }
  fleet.run_for(seconds_to_ns(8));
  fleet.finish();

  EXPECT_EQ(fleet.actor_system().failures(), 0u);
  for (std::size_t i = 0; i < kHosts; ++i) {
    ASSERT_NE(fleet.pipeline(i).registry(), nullptr);
    EXPECT_GE(fleet.pipeline(i).registry()->version(), 2u)
        << "host " << i << " never calibrated";
  }
}

TEST(Calibration, RequiresAGroundTruthMeter) {
  auto host = busy_host();
  PowerMeter::Config config = calibrating_config();
  config.with_powerspy = false;
  config.with_rapl = false;
  EXPECT_THROW(PowerMeter(*host, scaled_model(1.0), config), std::invalid_argument);
}

TEST(Calibration, CallbackRequiresCalibrationEnabled) {
  auto host = busy_host();
  PowerMeter meter(*host, scaled_model(1.0));  // Default config: no calibration.
  EXPECT_THROW(meter.pipeline().add_model_update_callback([](const ModelUpdated&) {}),
               std::logic_error);
}

TEST(Calibration, ColdStartLearnsFromNothing) {
  // No shipped model at all: the pipeline bootstraps an empty registry and
  // estimates the idle floor (0 W) until calibration fills in formulas.
  auto host = busy_host();
  PowerMeter::Config config = calibrating_config();
  config.calibration.drift_threshold_watts = 0.5;
  PowerMeter meter(*host, model::CpuPowerModel(), std::move(config));
  std::vector<ModelUpdated> swaps;
  meter.pipeline().add_model_update_callback(
      [&swaps](const ModelUpdated& update) { swaps.push_back(update); });
  meter.run_for(seconds_to_ns(6));
  meter.finish();
  EXPECT_EQ(meter.actor_system().failures(), 0u);
  ASSERT_FALSE(swaps.empty()) << "cold start never learned a model";
  ASSERT_NE(meter.pipeline().registry(), nullptr);
  EXPECT_GE(meter.pipeline().registry()->version(), 2u);
}

}  // namespace
}  // namespace powerapi::api
