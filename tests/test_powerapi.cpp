// Integration tests for the PowerAPI pipeline (Figure 2): sensors through
// formulas and aggregation to reporters, plus the baseline estimators.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "baselines/bertran_model.h"
#include "baselines/cpuload_model.h"
#include "baselines/happy_model.h"
#include "model/trainer.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "util/stats.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi::api {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

model::CpuPowerModel synthetic_model() {
  std::vector<model::FrequencyFormula> formulas;
  for (const double hz : simcpu::i3_2120().frequencies_hz) {
    model::FrequencyFormula f;
    f.frequency_hz = hz;
    f.events = {hpc::EventId::kInstructions, hpc::EventId::kCacheReferences,
                hpc::EventId::kCacheMisses};
    const double scale = hz / 3.3e9;
    f.coefficients = {2.2e-9 * scale, 2.1e-8, 1.6e-7};
    formulas.push_back(std::move(f));
  }
  return model::CpuPowerModel(31.0, std::move(formulas));
}

TEST(PowerMeter, ProducesMachineSeriesThroughThePipeline) {
  os::System system(simcpu::i3_2120());
  system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                          workloads::mixed_stress(0.5, 8e6), 0));
  PowerMeter meter(system, synthetic_model());
  auto& memory = meter.add_memory_reporter();
  meter.run_for(seconds_to_ns(5));
  meter.finish();

  const auto estimated = memory.series("powerapi-hpc");
  const auto measured = memory.series("powerspy");
  EXPECT_GE(estimated.size(), 15u);  // 250 ms period over 5 s, minus priming.
  EXPECT_GE(measured.size(), 15u);

  // The estimate must be in a physically sane band and correlate with the
  // meter (same machine, same windows).
  for (const auto& row : estimated) {
    EXPECT_GT(row.watts, 25.0);
    EXPECT_LT(row.watts, 70.0);
  }
  const auto est = MemoryReporter::watts_of(estimated);
  const auto ref = MemoryReporter::watts_of(measured);
  const std::size_t n = std::min(est.size(), ref.size());
  EXPECT_LT(util::mape(std::span(ref).subspan(0, n), std::span(est).subspan(0, n)), 35.0);
}

TEST(PowerMeter, PerPidAggregationAttributesActivity) {
  os::System system(simcpu::i3_2120());
  util::Rng rng(5);
  const os::Pid heavy = system.spawn(
      "heavy", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(1.0), 0));
  const os::Pid light = system.spawn(
      "light", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(0.2), 0));

  PowerMeter::Config config;
  config.dimension = AggregationDimension::kPid;
  PowerMeter meter(system, synthetic_model(), config);
  auto& memory = meter.add_memory_reporter();
  meter.monitor({heavy, light});
  meter.run_for(seconds_to_ns(4));
  meter.finish();

  const auto heavy_series = memory.series("powerapi-hpc", heavy);
  const auto light_series = memory.series("powerapi-hpc", light);
  ASSERT_GT(heavy_series.size(), 5u);
  ASSERT_GT(light_series.size(), 5u);
  const double heavy_mean = util::mean(MemoryReporter::watts_of(heavy_series));
  const double light_mean = util::mean(MemoryReporter::watts_of(light_series));
  EXPECT_GT(heavy_mean, 2.5 * light_mean);  // 5x the duty cycle.
  EXPECT_GT(light_mean, 0.0);
}

TEST(PowerMeter, TimestampAggregationPrefersMachineRow) {
  os::System system(simcpu::i3_2120());
  const os::Pid pid = system.spawn(
      "app", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(), 0));
  PowerMeter::Config config;
  config.dimension = AggregationDimension::kTimestamp;
  PowerMeter meter(system, synthetic_model(), config);
  auto& memory = meter.add_memory_reporter();
  meter.monitor({pid});
  meter.run_for(seconds_to_ns(3));
  meter.finish();

  // In timestamp mode every emitted row is machine-scope and includes idle.
  for (const auto& row : memory.all()) {
    EXPECT_EQ(row.pid, kMachinePid);
    if (row.formula == "powerapi-hpc") {
      EXPECT_GT(row.watts, 30.0);
    }
  }
}

TEST(PowerMeter, MonitorAllTracksSpawnedProcesses) {
  os::System system(simcpu::i3_2120());
  PowerMeter::Config config;
  config.dimension = AggregationDimension::kPid;
  PowerMeter meter(system, synthetic_model(), config);
  auto& memory = meter.add_memory_reporter();
  meter.monitor_all();
  meter.run_for(seconds_to_ns(1));
  const os::Pid late = system.spawn(
      "late", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(), 0));
  meter.run_for(seconds_to_ns(2));
  meter.finish();
  EXPECT_GT(memory.series("powerapi-hpc", late).size(), 2u);
}

TEST(PowerMeter, GroupAggregationSumsPerVm) {
  os::System system(simcpu::i3_2120());
  // Two "VMs": vm-a holds two busy processes, vm-b one light process.
  const os::Pid a1 = system.spawn(
      "a1", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(1.0), 0));
  const os::Pid a2 = system.spawn(
      "a2", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(1.0), 0));
  const os::Pid b1 = system.spawn(
      "b1", std::make_unique<workloads::SteadyBehavior>(workloads::cpu_stress(0.2), 0));
  system.set_group(a1, "vm-a");
  system.set_group(a2, "vm-a");
  system.set_group(b1, "vm-b");

  PowerMeter::Config config;
  config.dimension = AggregationDimension::kGroup;
  PowerMeter meter(system, synthetic_model(), config);
  auto& memory = meter.add_memory_reporter();
  meter.monitor({a1, a2, b1});
  meter.run_for(seconds_to_ns(4));
  meter.finish();

  const auto vm_a = memory.group_series("powerapi-hpc", "vm-a");
  const auto vm_b = memory.group_series("powerapi-hpc", "vm-b");
  ASSERT_GT(vm_a.size(), 5u);
  ASSERT_GT(vm_b.size(), 5u);
  const double mean_a = util::mean(MemoryReporter::watts_of(vm_a));
  const double mean_b = util::mean(MemoryReporter::watts_of(vm_b));
  // vm-a: two full-duty processes; vm-b: one at 20% duty.
  EXPECT_GT(mean_a, 4.0 * mean_b);
  // The machine scope appears under its own label and dominates (idle).
  const auto machine_rows = memory.group_series("powerapi-hpc", "(machine)");
  ASSERT_GT(machine_rows.size(), 5u);
  EXPECT_GT(util::mean(MemoryReporter::watts_of(machine_rows)), mean_a);
}

TEST(PowerMeter, RaplSeriesApproximatesPackagePower) {
  os::System system(simcpu::i3_2120());
  system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                          workloads::memory_stress(16e6), 0));
  PowerMeter::Config config;
  config.with_rapl = true;
  PowerMeter meter(system, synthetic_model(), config);
  auto& memory = meter.add_memory_reporter();
  meter.run_for(seconds_to_ns(3));
  meter.finish();

  const auto rapl = memory.series("rapl");
  const auto wall = memory.series("powerspy");
  ASSERT_GT(rapl.size(), 5u);
  // RAPL sees the package only: strictly below wall power, but nonzero.
  const double rapl_mean = util::mean(MemoryReporter::watts_of(rapl));
  const double wall_mean = util::mean(MemoryReporter::watts_of(wall));
  EXPECT_GT(rapl_mean, 3.0);
  EXPECT_LT(rapl_mean, wall_mean - 15.0);  // Platform+DRAM excluded.
}

TEST(PowerMeter, CsvReporterWritesWellFormedRows) {
  os::System system(simcpu::i3_2120());
  system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                          workloads::cpu_stress(), 0));
  std::ostringstream csv;
  PowerMeter meter(system, synthetic_model());
  meter.add_csv_reporter(csv);
  meter.run_for(seconds_to_ns(2));
  meter.finish();

  std::istringstream in(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "timestamp_s,pid,group,formula,watts");
  int rows = 0;
  while (std::getline(in, line)) {
    EXPECT_EQ(std::count(line.begin(), line.end(), ','), 4);
    ++rows;
  }
  EXPECT_GT(rows, 5);
}

TEST(PowerMeter, CallbackReporterInvoked) {
  os::System system(simcpu::i3_2120());
  system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                          workloads::cpu_stress(), 0));
  int calls = 0;
  PowerMeter meter(system, synthetic_model());
  meter.add_callback_reporter([&](const AggregatedPower& row) {
    EXPECT_FALSE(row.formula.empty());
    ++calls;
  });
  meter.run_for(seconds_to_ns(2));
  meter.finish();
  EXPECT_GT(calls, 5);
}

TEST(PowerMeter, FinishFlushesAndGuards) {
  os::System system(simcpu::i3_2120());
  PowerMeter meter(system, synthetic_model());
  meter.run_for(seconds_to_ns(1));
  meter.finish();
  meter.finish();  // Idempotent.
  EXPECT_THROW(meter.run_for(seconds_to_ns(1)), std::logic_error);
  EXPECT_THROW(meter.add_estimator(nullptr), std::invalid_argument);
}

TEST(PowerMeter, DeterministicAcrossRuns) {
  auto run = [] {
    os::System system(simcpu::i3_2120());
    system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                            workloads::mixed_stress(0.7, 16e6), 0));
    PowerMeter meter(system, synthetic_model());
    auto& memory = meter.add_memory_reporter();
    meter.run_for(seconds_to_ns(3));
    meter.finish();
    return MemoryReporter::watts_of(memory.series("powerspy"));
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

// --- Baselines on a shared synthetic sample set ---

class BaselineFixture : public ::testing::Test {
 protected:
  static model::SampleSet make_samples() {
    // Synthetic linear world: watts = idle + 5*util + 1e-9*instr.
    model::SampleSet set;
    set.idle_watts = 30.0;
    set.frequencies_hz = {1.6e9, 3.3e9};
    util::Rng rng(17);
    for (const double hz : set.frequencies_hz) {
      std::vector<model::TrainingSample> batch;
      for (int i = 0; i < 60; ++i) {
        model::TrainingSample s;
        s.frequency_hz = hz;
        s.utilization = rng.uniform(0.05, 1.0);
        const double instr = s.utilization * hz * 1.2;
        const double shared = rng.uniform(0.0, 0.5) * s.utilization * hz;
        model::set_rate(s.rates, hpc::EventId::kInstructions, instr);
        model::set_rate(s.rates, hpc::EventId::kCycles,
                        s.utilization * hz * rng.uniform(3.0, 5.0));
        model::set_rate(s.rates, hpc::EventId::kCacheReferences,
                        instr * rng.uniform(0.015, 0.03));
        model::set_rate(s.rates, hpc::EventId::kCacheMisses,
                        instr * rng.uniform(0.001, 0.004));
        model::set_rate(s.rates, hpc::EventId::kBranchMisses,
                        instr * rng.uniform(0.0005, 0.002));
        s.smt_shared_cycles_per_sec = shared;
        s.watts = set.idle_watts + 5.0 * s.utilization + 1e-9 * instr +
                  rng.gaussian(0, 0.05);
        batch.push_back(s);
      }
      set.by_frequency.push_back(std::move(batch));
    }
    return set;
  }
};

TEST_F(BaselineFixture, CpuLoadModelFitsLinearLoadWorld) {
  const auto samples = make_samples();
  const auto model = baselines::CpuLoadModel::train(samples);
  baselines::Observation obs;
  obs.frequency_hz = 3.3e9;
  obs.utilization = 0.5;
  model::set_rate(obs.rates, hpc::EventId::kInstructions, 0.5 * 3.3e9 * 1.2);
  const double est = model.estimate(obs);
  const double truth = 30.0 + 5.0 * 0.5 + 1e-9 * 0.5 * 3.3e9 * 1.2;
  EXPECT_NEAR(est, truth, 0.8);
  EXPECT_GT(model.slope_at(3.3e9), 0.0);
  EXPECT_EQ(model.name(), "cpu-load");
}

TEST_F(BaselineFixture, BertranDecompositionSumsToEstimate) {
  const auto samples = make_samples();
  const auto model = baselines::BertranModel::train(samples);
  baselines::Observation obs = samples.by_frequency[1][0];
  const auto parts = model.decompose(obs);
  ASSERT_EQ(parts.size(), baselines::BertranModel::component_names().size());
  double sum = 0;
  for (double p : parts) {
    EXPECT_GE(p, -1e-9);
    sum += p;
  }
  EXPECT_NEAR(sum + samples.idle_watts, model.estimate(obs), 1e-6);
  EXPECT_NEAR(model.estimate_task(obs) + samples.idle_watts, model.estimate(obs), 1e-9);
}

TEST_F(BaselineFixture, HappyModelUsesSharedCycleSignal) {
  // World where co-resident cycles are cheaper: watts = idle +
  // 2e-9*solo + 1e-9*shared.
  model::SampleSet set;
  set.idle_watts = 30.0;
  set.frequencies_hz = {3.3e9};
  util::Rng rng(23);
  std::vector<model::TrainingSample> batch;
  for (int i = 0; i < 80; ++i) {
    model::TrainingSample s;
    s.frequency_hz = 3.3e9;
    const double cycles = rng.uniform(0.1, 1.0) * 3.3e9 * 4;
    const double shared = rng.uniform(0.0, 1.0) * cycles;
    model::set_rate(s.rates, hpc::EventId::kCycles, cycles);
    model::set_rate(s.rates, hpc::EventId::kInstructions,
                    cycles * rng.uniform(0.5, 1.1));
    model::set_rate(s.rates, hpc::EventId::kCacheMisses,
                    cycles * rng.uniform(0.0005, 0.003));
    s.smt_shared_cycles_per_sec = shared;
    s.watts = 30.0 + 2e-9 * (cycles - shared) + 1e-9 * shared + rng.gaussian(0, 0.02);
    batch.push_back(s);
  }
  set.by_frequency.push_back(std::move(batch));
  const auto model = baselines::HappyModel::train(set);

  baselines::Observation solo;
  solo.frequency_hz = 3.3e9;
  model::set_rate(solo.rates, hpc::EventId::kCycles, 1e9);
  model::set_rate(solo.rates, hpc::EventId::kInstructions, 0.8e9);
  model::set_rate(solo.rates, hpc::EventId::kCacheMisses, 1e6);
  solo.smt_shared_cycles_per_sec = 0.0;

  baselines::Observation shared = solo;
  shared.smt_shared_cycles_per_sec = 1e9;  // All cycles co-resident.

  // Same counters, different sharing: HAPPY must charge the solo thread more.
  EXPECT_GT(model.estimate_task(solo), model.estimate_task(shared) * 1.3);
}

TEST_F(BaselineFixture, PerFrequencyFitRejectsDegenerateInput) {
  model::SampleSet tiny;
  tiny.idle_watts = 10;
  tiny.frequencies_hz = {1e9};
  tiny.by_frequency.push_back({model::TrainingSample{}, model::TrainingSample{}});
  std::vector<baselines::FeatureFn> features = {
      [](const baselines::Observation& o) { return o.utilization; }};
  EXPECT_THROW(baselines::PerFrequencyFit::fit(tiny, features), std::runtime_error);
  EXPECT_THROW(baselines::PerFrequencyFit::fit(tiny, {}), std::invalid_argument);
}

}  // namespace
}  // namespace powerapi::api
