// Cross-module integration scenarios: train → serialize → monitor
// equivalence, turbo-bin learning, peripherals vs CPU-only estimation,
// baseline formulas through the actor pipeline, and whole-stack determinism.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "baselines/cpuload_model.h"
#include "model/model_io.h"
#include "model/trainer.h"
#include "os/system.h"
#include "powerapi/power_meter.h"
#include "util/stats.h"
#include "workloads/behaviors.h"
#include "workloads/specjbb.h"
#include "workloads/stress.h"

namespace powerapi {
namespace {

using util::ms_to_ns;
using util::seconds_to_ns;

model::TrainerOptions quick_options() {
  model::TrainerOptions options;
  options.grid.intensities = {1.0};
  options.grid.memory_shares = {0.0, 1.0};
  options.grid.working_sets = {24.0 * 1024 * 1024};
  options.grid.thread_counts = {1, 4};
  options.idle_duration = seconds_to_ns(2);
  options.point_duration = seconds_to_ns(1);
  return options;
}

simcpu::CpuSpec small_i3() {
  simcpu::CpuSpec spec = simcpu::i3_2120();
  spec.frequencies_hz = {1.6e9, 3.3e9};
  return spec;
}

TEST(Integration, TrainerLearnsTurboBinFormulas) {
  // Reduced i7: two pinnable points plus two turbo bins. Single-thread grid
  // cells at the nominal max run turbo'd, so the collector must populate
  // turbo buckets — "including the TurboBoost ones when available".
  simcpu::CpuSpec spec = simcpu::i7_2600();
  spec.frequencies_hz = {1.6e9, 3.4e9};
  spec.turbo_frequencies_hz = {3.5e9, 3.8e9};
  spec.validate();

  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, quick_options());
  const model::SampleSet samples = trainer.collect();

  // At least one turbo bucket must have survived thinning.
  bool has_turbo_bucket = false;
  for (const double hz : samples.frequencies_hz) {
    if (hz > 3.45e9) has_turbo_bucket = true;
  }
  ASSERT_TRUE(has_turbo_bucket);

  const model::TrainingResult result = trainer.fit(samples);
  const auto* turbo_formula = result.model.formula_for(3.8e9);
  ASSERT_NE(turbo_formula, nullptr);
  EXPECT_GT(turbo_formula->frequency_hz, 3.45e9);
  // Turbo instruction energy exceeds the nominal-max one (V²f above 1).
  const auto* nominal = result.model.formula_for(3.4e9);
  EXPECT_GT(turbo_formula->coefficients[0], nominal->coefficients[0]);
}

TEST(Integration, SavedModelMonitorsIdenticallyToFreshOne) {
  const auto spec = small_i3();
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, quick_options());
  const model::CpuPowerModel fresh = trainer.train().model;

  // Round-trip through the text format.
  const auto restored = model::model_from_string(model::model_to_string(fresh));
  ASSERT_TRUE(restored.ok()) << restored.error_message();

  auto monitor_with = [&spec](const model::CpuPowerModel& m) {
    os::System system(spec);
    system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                            workloads::mixed_stress(0.6, 16e6), 0));
    api::PowerMeter meter(system, m);
    auto& memory = meter.add_memory_reporter();
    meter.run_for(seconds_to_ns(3));
    meter.finish();
    return api::MemoryReporter::watts_of(memory.series("powerapi-hpc"));
  };
  const auto a = monitor_with(fresh);
  const auto b = monitor_with(restored.value());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Integration, EndToEndEstimationErrorIsBounded) {
  const auto spec = small_i3();
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, quick_options());
  const model::CpuPowerModel m = trainer.train().model;

  os::System system(spec);
  util::Rng rng(8);
  system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));
  workloads::SpecJbbOptions jbb;
  jbb.warmup = seconds_to_ns(2);
  jbb.staircase_step = seconds_to_ns(2);
  jbb.search_phase = seconds_to_ns(6);
  jbb.cooldown = seconds_to_ns(2);
  system.spawn("specjbb", workloads::make_specjbb(jbb, rng.fork(2)));

  api::PowerMeter meter(system, m);
  auto& memory = meter.add_memory_reporter();
  meter.run_for(workloads::specjbb_duration(jbb));
  meter.finish();

  const auto est = api::MemoryReporter::watts_of(memory.series("powerapi-hpc"));
  const auto ref = api::MemoryReporter::watts_of(memory.series("powerspy"));
  const std::size_t n = std::min(est.size(), ref.size());
  ASSERT_GT(n, 20u);
  const double err = util::median_ape(std::span(ref).subspan(0, n),
                                      std::span(est).subspan(0, n));
  // Double-digit but bounded: the Figure-3 regime.
  EXPECT_LT(err, 30.0);
}

TEST(Integration, PeripheralsWidenTheWallGapCpuModelsCannotSee) {
  const auto spec = small_i3();
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, quick_options());
  const model::CpuPowerModel m = trainer.train().model;

  auto run = [&spec, &m](bool with_io) {
    os::System::Options options;
    options.with_peripherals = true;
    os::System system(spec, std::move(options));
    // Identical CPU behaviour in both runs; only the IO demand differs, so
    // the gap difference isolates peripheral power.
    const auto profile = with_io ? workloads::io_stress(150, 100, 1.0)
                                 : workloads::io_stress(0, 0, 1.0);
    system.spawn("app", std::make_unique<workloads::SteadyBehavior>(profile, 0));
    api::PowerMeter meter(system, m);
    auto& memory = meter.add_memory_reporter();
    meter.run_for(seconds_to_ns(4));
    meter.finish();
    const auto est = api::MemoryReporter::watts_of(memory.series("powerapi-hpc"));
    const auto ref = api::MemoryReporter::watts_of(memory.series("powerspy"));
    const std::size_t n = std::min(est.size(), ref.size());
    return util::mean(std::span(ref).subspan(0, n)) -
           util::mean(std::span(est).subspan(0, n));
  };
  const double gap_io = run(true);
  const double gap_cpu = run(false);
  // The CPU-trained model cannot attribute disk/NIC activity: the measured-
  // minus-estimated gap must grow by the IO activity watts (~1.5-2 W at
  // these rates).
  EXPECT_GT(gap_io, gap_cpu + 1.0);
}

TEST(Integration, IoFormulaTracksPeripheralPower) {
  const auto spec = small_i3();
  os::System::Options options;
  options.with_peripherals = true;
  os::System system(spec, std::move(options));
  system.spawn("fileserver", std::make_unique<workloads::SteadyBehavior>(
                                 workloads::io_stress(80, 50, 1.0), 0));

  api::PowerMeter::Config config;
  config.with_io = true;
  api::PowerMeter meter(system, model::CpuPowerModel{}, config);
  auto& memory = meter.add_memory_reporter();
  meter.run_for(seconds_to_ns(3));
  meter.finish();

  const auto io_series = memory.series("io-datasheet");
  ASSERT_GT(io_series.size(), 5u);
  // Component split: the IO formula's estimate must track the true
  // peripheral power within ~15% (datasheet model vs exact state machine).
  const double estimated = util::mean(api::MemoryReporter::watts_of(io_series));
  const double actual = system.disk()->last_power_watts() + system.nic()->last_power_watts();
  EXPECT_NEAR(estimated, actual, actual * 0.15);
  EXPECT_GT(estimated, system.disk()->params().idle_spinning_watts);
}

TEST(Integration, IoSensorSilentWithoutPeripherals) {
  const auto spec = small_i3();
  os::System system(spec);
  api::PowerMeter::Config config;
  config.with_io = true;  // Requested, but the system has no peripherals.
  api::PowerMeter meter(system, model::CpuPowerModel{}, config);
  auto& memory = meter.add_memory_reporter();
  meter.run_for(seconds_to_ns(1));
  meter.finish();
  EXPECT_TRUE(memory.series("io-datasheet").empty());
}

TEST(Integration, BaselineFormulaFlowsThroughThePipeline) {
  const auto spec = small_i3();
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, quick_options());
  const model::TrainingResult trained = trainer.train();
  const auto cpuload = std::make_shared<baselines::CpuLoadModel>(
      baselines::CpuLoadModel::train(trained.samples));

  os::System system(spec);
  system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                          workloads::cpu_stress(0.8), 0));
  api::PowerMeter meter(system, trained.model);
  meter.add_estimator(cpuload);
  auto& memory = meter.add_memory_reporter();
  meter.run_for(seconds_to_ns(3));
  meter.finish();

  const auto series = memory.series("cpu-load");
  ASSERT_GT(series.size(), 5u);
  for (const auto& row : series) {
    EXPECT_GT(row.watts, 20.0);
    EXPECT_LT(row.watts, 80.0);
  }
}

TEST(Integration, GovernorDrivenFrequencySelectsMatchingFormulas) {
  const auto spec = small_i3();
  model::Trainer trainer(spec, simcpu::GroundTruthParams{}, quick_options());
  const model::CpuPowerModel m = trainer.train().model;

  os::System::Options options;
  options.use_ondemand_governor = true;
  os::System system(spec, std::move(options));
  util::Rng rng(12);
  // Load that swings the governor between min and max.
  system.spawn("bursty", std::make_unique<workloads::BurstyBehavior>(
                             workloads::cpu_stress(), seconds_to_ns(1),
                             seconds_to_ns(1), 0, rng.fork(1)));
  system.spawn("bursty2", std::make_unique<workloads::BurstyBehavior>(
                              workloads::cpu_stress(), seconds_to_ns(1),
                              seconds_to_ns(1), 0, rng.fork(2)));

  api::PowerMeter meter(system, m);
  auto& memory = meter.add_memory_reporter();
  meter.run_for(seconds_to_ns(10));
  meter.finish();

  const auto est = api::MemoryReporter::watts_of(memory.series("powerapi-hpc"));
  const auto ref = api::MemoryReporter::watts_of(memory.series("powerspy"));
  const std::size_t n = std::min(est.size(), ref.size());
  ASSERT_GT(n, 20u);
  EXPECT_LT(util::mape(std::span(ref).subspan(0, n), std::span(est).subspan(0, n)), 25.0);
}

TEST(Integration, WholeStackIsDeterministic) {
  auto run = [] {
    const auto spec = small_i3();
    model::TrainerOptions options = quick_options();
    options.grid.thread_counts = {4};
    model::Trainer trainer(spec, simcpu::GroundTruthParams{}, options);
    const model::CpuPowerModel m = trainer.train().model;
    os::System system(spec);
    util::Rng rng(99);
    system.spawn("kdaemon", workloads::make_background_daemon(rng.fork(1)));
    system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                            workloads::memory_stress(24e6, 0.7), 0));
    api::PowerMeter meter(system, m);
    auto& memory = meter.add_memory_reporter();
    meter.run_for(seconds_to_ns(3));
    meter.finish();
    double sum = 0;
    for (const auto& row : memory.all()) sum += row.watts;
    return sum;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace powerapi
