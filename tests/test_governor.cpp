// The power governor: policy arithmetic (rung ladders, budget shares, the
// hysteresis/cooldown step controller), core parking in the simulated
// machine, and the closed loop end to end — budget held without pstate
// oscillation under a step load, parked cores re-waking, and the threaded
// dispatcher reproducing the kManual decision series exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "governor/governor.h"
#include "governor/policy.h"
#include "os/system.h"
#include "scenario/scenario_parser.h"
#include "scenario/scenario_runner.h"
#include "simcpu/machine.h"
#include "workloads/behaviors.h"
#include "workloads/stress.h"

namespace powerapi::governor {
namespace {

using util::ms_to_ns;

// ---------------------------------------------------------------------------
// Policy layer: pure arithmetic.
// ---------------------------------------------------------------------------

const std::vector<double> kLadder = {1.6e9, 2.0e9, 2.6e9, 3.3e9};

TEST(RungLadder, PaceDescendsFrequencyBeforeParking) {
  const auto rungs = build_rung_ladder(Policy::kPaceToDeadline, kLadder, 4, 1);
  ASSERT_EQ(rungs.size(), 7u);  // 1 + 3 lower freqs + 3 parkable cores.
  EXPECT_EQ(rungs[0].frequency_hz, 3.3e9);
  EXPECT_EQ(rungs[0].parked_cores, 0u);
  EXPECT_EQ(rungs[1].frequency_hz, 2.6e9);
  EXPECT_EQ(rungs[2].frequency_hz, 2.0e9);
  EXPECT_EQ(rungs[3].frequency_hz, 1.6e9);
  EXPECT_EQ(rungs[3].parked_cores, 0u);
  // Parking only at the ladder floor.
  EXPECT_EQ(rungs[4].frequency_hz, 1.6e9);
  EXPECT_EQ(rungs[4].parked_cores, 1u);
  EXPECT_EQ(rungs[6].parked_cores, 3u);
}

TEST(RungLadder, RaceParksBeforeFrequencyDescent) {
  const auto rungs = build_rung_ladder(Policy::kRaceToIdle, kLadder, 4, 1);
  ASSERT_EQ(rungs.size(), 7u);
  EXPECT_EQ(rungs[0].frequency_hz, 3.3e9);
  // Parking first, at full frequency.
  EXPECT_EQ(rungs[1].frequency_hz, 3.3e9);
  EXPECT_EQ(rungs[1].parked_cores, 1u);
  EXPECT_EQ(rungs[3].parked_cores, 3u);
  // Then frequency descent with maximum parking held.
  EXPECT_EQ(rungs[4].frequency_hz, 2.6e9);
  EXPECT_EQ(rungs[4].parked_cores, 3u);
  EXPECT_EQ(rungs[6].frequency_hz, 1.6e9);
}

TEST(RungLadder, MinActiveCoresBoundsParking) {
  const auto rungs = build_rung_ladder(Policy::kPaceToDeadline, kLadder, 4, 3);
  for (const Rung& rung : rungs) EXPECT_LE(rung.parked_cores, 1u);
  // min_active_cores == cores: no parking rungs at all.
  const auto no_park = build_rung_ladder(Policy::kRaceToIdle, kLadder, 4, 4);
  ASSERT_EQ(no_park.size(), kLadder.size());
  for (const Rung& rung : no_park) EXPECT_EQ(rung.parked_cores, 0u);
}

TEST(ComputeShares, ProportionalWithHeadroomRedistribution) {
  std::vector<double> shares;
  // Equal weights, host 0 nearly idle: its headroom flows to the two hosts
  // in deficit, proportional to each deficit.
  compute_shares(90.0, std::vector<double>{1, 1, 1},
                 std::vector<double>{10, 40, 40}, shares);
  ASSERT_EQ(shares.size(), 3u);
  EXPECT_NEAR(shares[0], 10.0, 1e-12);  // Donor keeps exactly its draw.
  EXPECT_NEAR(shares[1], 40.0, 1e-12);
  EXPECT_NEAR(shares[2], 40.0, 1e-12);
}

TEST(ComputeShares, AlwaysSumsToBudget) {
  const std::vector<std::vector<double>> watt_cases = {
      {0, 0, 0}, {50, 50, 50}, {5, 80, 20}, {100, 1, 1}};
  for (const auto& watts : watt_cases) {
    for (const auto& weights : std::vector<std::vector<double>>{
             {1, 1, 1}, {2, 1, 1}, {0, 0, 0}}) {
      std::vector<double> shares;
      compute_shares(75.0, weights, watts, shares);
      double sum = 0.0;
      for (double s : shares) sum += s;
      EXPECT_NEAR(sum, 75.0, 1e-9);
    }
  }
}

TEST(StepController, ProportionalDownStepIsImmediateAndCapped) {
  StepController controller(StepController::Options{2.0, ms_to_ns(1000), 3});
  // Overshoot of 7 W in 2 W bands → 3 rungs, within the cap.
  EXPECT_EQ(controller.decide(0, 10, 32.0, 25.0, 0), 3u);
  EXPECT_EQ(controller.last_direction(), -1);
  // A huge overshoot is still capped at max_step.
  EXPECT_EQ(controller.decide(3, 10, 100.0, 25.0, 1), 6u);
  // Clamped to max_rung.
  EXPECT_EQ(controller.decide(9, 10, 100.0, 25.0, 2), 10u);
}

TEST(StepController, UpStepWaitsOutCooldownAndSingleSteps) {
  StepController controller(StepController::Options{2.0, ms_to_ns(1000), 1});
  // Before any actuation the controller may step up immediately.
  EXPECT_EQ(controller.decide(4, 10, 10.0, 25.0, 0), 3u);
  EXPECT_EQ(controller.last_direction(), 1);
  // Inside the cooldown window: hold, however far under budget.
  EXPECT_EQ(controller.decide(3, 10, 1.0, 25.0, ms_to_ns(500)), 3u);
  EXPECT_EQ(controller.last_direction(), 0);
  // Cooldown elapsed: exactly one rung, never proportional.
  EXPECT_EQ(controller.decide(3, 10, 1.0, 25.0, ms_to_ns(1000)), 2u);
  EXPECT_EQ(controller.last_direction(), 1);
  // A down-step also arms the cooldown for the next up-step.
  EXPECT_EQ(controller.decide(2, 10, 40.0, 25.0, ms_to_ns(1100)), 3u);
  EXPECT_EQ(controller.decide(3, 10, 1.0, 25.0, ms_to_ns(1500)), 3u);
  EXPECT_EQ(controller.decide(3, 10, 1.0, 25.0, ms_to_ns(2100)), 2u);
}

TEST(StepController, HoldsInsideHysteresisBand) {
  StepController controller(StepController::Options{2.0, ms_to_ns(1000), 1});
  EXPECT_EQ(controller.decide(5, 10, 26.9, 25.0, 0), 5u);
  EXPECT_EQ(controller.decide(5, 10, 23.1, 25.0, ms_to_ns(5000)), 5u);
  EXPECT_EQ(controller.last_direction(), 0);
}

TEST(StepController, ZeroBandSingleStepsDown) {
  StepController controller(StepController::Options{0.0, ms_to_ns(1000), 4});
  EXPECT_EQ(controller.decide(0, 10, 25.1, 25.0, 0), 1u);
}

// ---------------------------------------------------------------------------
// Core parking in the simulated machine and OS.
// ---------------------------------------------------------------------------

std::vector<simcpu::ThreadWork> busy_work(const simcpu::CpuSpec& spec) {
  std::vector<simcpu::ThreadWork> work(spec.hw_threads());
  for (std::size_t i = 0; i < work.size(); ++i) {
    work[i].active = true;
    work[i].task_id = static_cast<std::int64_t>(i + 1);
    work[i].profile = workloads::cpu_stress();
  }
  return work;
}

TEST(CoreParking, ParkedCoresExecuteNothingAndBurnC6) {
  const auto spec = simcpu::quad_core();
  simcpu::Machine machine(spec);
  simcpu::Machine reference(spec);
  const auto work = busy_work(spec);
  for (int i = 0; i < 5; ++i) {
    machine.tick(work, ms_to_ns(1));
    reference.tick(work, ms_to_ns(1));
  }
  // Nothing parked yet: bit-identical with the reference machine.
  EXPECT_EQ(machine.total_energy_joules(), reference.total_energy_joules());

  ASSERT_TRUE(machine.set_core_parked(3, true));
  EXPECT_EQ(machine.parked_core_count(), 1u);
  const std::size_t thread = 3 * spec.threads_per_core;  // Core 3's first HT.
  const auto before = machine.thread_counters(thread);
  double parked_power = 0.0;
  for (int i = 0; i < 5; ++i) {
    parked_power = machine.tick(work, ms_to_ns(1)).power.total();
    reference.tick(work, ms_to_ns(1));
  }
  // The parked core's threads execute nothing and the package draws less
  // than the identical unparked machine.
  EXPECT_EQ(machine.thread_counters(thread).instructions, before.instructions);
  EXPECT_LT(parked_power, reference.last_power_watts());
}

TEST(CoreParking, ReWakeChargesTheC6SpikeAndResumesWork) {
  const auto spec = simcpu::quad_core();
  simcpu::Machine machine(spec);
  const auto work = busy_work(spec);
  const std::size_t thread = 3 * spec.threads_per_core;  // Core 3's first HT.
  machine.set_core_parked(3, true);
  for (int i = 0; i < 3; ++i) machine.tick(work, ms_to_ns(1));
  const auto parked_counters = machine.thread_counters(thread);

  EXPECT_FALSE(machine.set_core_parked(3, false));
  EXPECT_EQ(machine.parked_core_count(), 0u);
  machine.tick(work, ms_to_ns(1));
  // The re-woken core executes again.
  EXPECT_GT(machine.thread_counters(thread).instructions,
            parked_counters.instructions);
}

TEST(CoreParking, SystemParksHighestCoresAndKeepsOneAwake) {
  os::System system(simcpu::quad_core());
  EXPECT_EQ(system.set_parked_cores(2), 2u);
  EXPECT_TRUE(system.machine().core_parked(2));
  EXPECT_TRUE(system.machine().core_parked(3));
  EXPECT_FALSE(system.machine().core_parked(0));
  // Requests beyond cores-1 clamp: one core always stays awake.
  EXPECT_EQ(system.set_parked_cores(99), 3u);
  EXPECT_EQ(system.parked_cores(), 3u);
  // The scheduler keeps running on the remaining core.
  system.spawn("app", std::make_unique<workloads::SteadyBehavior>(
                          workloads::cpu_stress(), 0));
  system.run_for(ms_to_ns(20));
  EXPECT_GT(system.machine().machine_counters().instructions, 0u);
  // Unpark everything again.
  EXPECT_EQ(system.set_parked_cores(0), 0u);
  EXPECT_EQ(system.machine().parked_core_count(), 0u);
}

// ---------------------------------------------------------------------------
// The GovernorActor against a synthetic plant.
// ---------------------------------------------------------------------------

/// A fake host whose draw responds to the governor's actuations: watts =
/// idle + span · (f / f_max) · (active / cores) · demand. Deterministic and
/// instant, so the loop dynamics under test are the controller's alone.
struct Plant {
  double idle = 10.0;
  double dyn_span = 30.0;
  double demand = 1.0;
  double frequency = 3.3e9;
  std::size_t parked = 0;
  std::vector<std::size_t> parked_history;

  double watts() const {
    const double active = static_cast<double>(4 - parked) / 4.0;
    return idle + dyn_span * (frequency / 3.3e9) * active * demand;
  }
  HostControl control(const std::string& label) {
    HostControl c;
    c.label = label;
    c.cores = 4;
    c.frequencies_ascending = kLadder;
    c.set_frequency = [this](double hz) { return frequency = hz; };
    c.set_parked = [this](std::size_t cores) {
      parked_history.push_back(cores);
      return parked = cores;
    };
    return c;
  }
};

struct Loop {
  actors::ActorSystem system{actors::ActorSystem::Mode::kManual};
  actors::EventBus bus{system};
  GovernorActor* governor = nullptr;
  actors::ActorRef ref;
  std::vector<Plant>* plants = nullptr;
  util::TimestampNs now = 0;

  Loop(GovernorOptions options, std::vector<Plant>& hosts) : plants(&hosts) {
    std::vector<HostControl> controls;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      controls.push_back(hosts[i].control("h" + std::to_string(i)));
    }
    auto actor = std::make_unique<GovernorActor>(bus, std::move(options),
                                                 std::move(controls));
    governor = actor.get();
    ref = system.spawn("governor", std::move(actor));
  }

  /// One sense→decide cycle: every plant reports, then the tick evaluates.
  void tick(util::DurationNs interval = ms_to_ns(500)) {
    now += interval;
    for (std::size_t i = 0; i < plants->size(); ++i) {
      HostPower power;
      power.host = i;
      power.timestamp = now;
      power.formula = "powerapi-hpc";
      power.watts = (*plants)[i].watts();
      power.machine_scope = true;
      system.tell(ref, actors::Payload(std::move(power)));
    }
    system.tell(ref, actors::Payload(GovernorTick{now}));
    system.drain();
  }

  double fleet_watts() const {
    double sum = 0.0;
    for (const Plant& p : *plants) sum += p.watts();
    return sum;
  }
};

GovernorOptions loop_options() {
  GovernorOptions options;
  options.budget_watts = 50.0;
  options.hysteresis_watts = 2.0;
  options.cooldown_ns = ms_to_ns(1000);  // Two 500 ms ticks.
  return options;
}

TEST(GovernorActor, HoldsBudgetUnderStepLoadWithoutOscillation) {
  std::vector<Plant> plants(2);
  Loop loop(loop_options(), plants);

  // Demand spike: both hosts at full tilt would draw 80 W against 50 W.
  for (int i = 0; i < 20; ++i) loop.tick();
  EXPECT_LE(loop.fleet_watts(), 50.0 + 2.0 * 2);  // Within hysteresis bands.
  EXPECT_GT(loop.governor->actuation_count(), 0u);

  // Once converged the governor must be quiet: no limit-cycle around the
  // cap. Ten more steady ticks may not actuate at all.
  const std::uint64_t settled = loop.governor->actuation_count();
  for (int i = 0; i < 10; ++i) loop.tick();
  EXPECT_EQ(loop.governor->actuation_count(), settled);

  // Load fades: the governor steps back up, cooldown-limited, and goes
  // quiet again at the top of the ladder.
  for (Plant& p : plants) p.demand = 0.2;
  for (int i = 0; i < 30; ++i) loop.tick();
  EXPECT_EQ(loop.governor->current_rung(0), 0u);
  EXPECT_EQ(loop.governor->current_rung(1), 0u);
  const std::uint64_t recovered = loop.governor->actuation_count();
  for (int i = 0; i < 10; ++i) loop.tick();
  EXPECT_EQ(loop.governor->actuation_count(), recovered);

  // Bounded actuation total: each host can descend and re-climb the ladder
  // once per load transition, nothing more.
  EXPECT_LE(recovered, 2u * 2u * 6u);
}

TEST(GovernorActor, CooldownSpacesUpSteps) {
  std::vector<Plant> plants(1);
  GovernorOptions options = loop_options();
  options.budget_watts = 25.0;
  Loop loop(options, plants);

  for (int i = 0; i < 12; ++i) loop.tick();
  const std::size_t throttled = loop.governor->current_rung(0);
  EXPECT_GT(throttled, 0u);

  // Demand vanishes; with a 2-tick cooldown the rung may recover at most
  // every second tick.
  plants[0].demand = 0.1;
  std::size_t previous = throttled;
  int recoveries_in_consecutive_ticks = 0;
  bool recovered_last_tick = false;
  for (int i = 0; i < 20 && previous > 0; ++i) {
    loop.tick();
    const std::size_t rung = loop.governor->current_rung(0);
    ASSERT_GE(previous, rung);          // Never overshoots downward here.
    ASSERT_LE(previous - rung, 1u);     // Single-stepped.
    if (rung < previous && recovered_last_tick) ++recoveries_in_consecutive_ticks;
    recovered_last_tick = rung < previous;
    previous = rung;
  }
  EXPECT_EQ(previous, 0u);
  EXPECT_EQ(recoveries_in_consecutive_ticks, 0);
}

TEST(GovernorActor, RaceToIdleParksAndReWakes) {
  std::vector<Plant> plants(1);
  GovernorOptions options = loop_options();
  options.budget_watts = 22.0;  // Forces deep throttling of the lone host.
  options.policy = Policy::kRaceToIdle;
  options.min_active_cores = 2;
  Loop loop(options, plants);

  for (int i = 0; i < 15; ++i) loop.tick();
  EXPECT_GT(plants[0].parked, 0u);
  EXPECT_LE(plants[0].parked, 2u);  // min_active_cores floor respected.

  plants[0].demand = 0.05;
  for (int i = 0; i < 30; ++i) loop.tick();
  EXPECT_EQ(plants[0].parked, 0u);  // Re-woken all the way.
  EXPECT_EQ(loop.governor->current_rung(0), 0u);
  // History shows the round trip, and every actuation was recorded.
  EXPECT_FALSE(plants[0].parked_history.empty());
  EXPECT_EQ(loop.governor->history().size(), loop.governor->actuation_count());
}

// ---------------------------------------------------------------------------
// Closed loop through the scenario layer: determinism across runs and modes.
// ---------------------------------------------------------------------------

const char* kGovernScenario = R"(
scenario govern_test
seed 11
duration 4s
tick 1ms

cpu c i3_2120

workload hot
  kind steady
  profile cpu intensity=1.0
end

host a
  count 2
  cpu c
  run hot copies=2 name=hot
end

monitor period=100ms dimension=timestamp
formula fixed idle=30 coefficients=2.0e-9,3.0e-9,1.5e-8
govern budget_w=64 policy=pace hysteresis_w=1 cooldown_ms=400 interval_ms=200
fleet aggregation=on workers=2 chunk=2
)";

scenario::RunResult run_govern_scenario(actors::ActorSystem::Mode mode) {
  scenario::ScenarioSpec spec =
      scenario::ScenarioParser::parse_string(kGovernScenario, "govern_test");
  scenario::ScenarioRunner runner(std::move(spec));
  scenario::RunOptions options;
  options.mode = mode;
  return runner.run(options);
}

std::string hosts_csv(const scenario::RunResult& result) {
  std::ostringstream out;
  scenario::write_csv(out, result);
  return out.str();
}

TEST(GovernorScenario, ManualRunsAreByteIdenticalAndActuate) {
  const auto first = run_govern_scenario(actors::ActorSystem::Mode::kManual);
  const auto second = run_govern_scenario(actors::ActorSystem::Mode::kManual);
  EXPECT_GT(first.governor_actuations, 0u);
  EXPECT_EQ(first.governor_actuations, second.governor_actuations);
  EXPECT_EQ(hosts_csv(first), hosts_csv(second));
}

/// Per-formula machine series: (timestamp, watts) pairs in emission order.
/// Rows of different formulas may interleave differently under the threaded
/// dispatcher (that interleaving is not part of the determinism contract);
/// within a formula, order and values must match bit-exactly.
std::map<std::string, std::vector<std::pair<util::TimestampNs, double>>>
series_by_formula(const scenario::HostSeries& host) {
  std::map<std::string, std::vector<std::pair<util::TimestampNs, double>>> out;
  for (const auto& row : host.rows) {
    out[row.formula].emplace_back(row.timestamp, row.watts);
  }
  return out;
}

TEST(GovernorScenario, ThreadedMatchesManualPerHostSeries) {
  const auto manual = run_govern_scenario(actors::ActorSystem::Mode::kManual);
  const auto threaded = run_govern_scenario(actors::ActorSystem::Mode::kThreaded);
  EXPECT_EQ(manual.governor_actuations, threaded.governor_actuations);
  ASSERT_EQ(manual.hosts.size(), threaded.hosts.size());
  for (std::size_t h = 0; h < manual.hosts.size(); ++h) {
    const auto m = series_by_formula(manual.hosts[h]);
    const auto t = series_by_formula(threaded.hosts[h]);
    // Bit-exact: the governor's decisions (and so the DVFS trajectory)
    // must be identical under both dispatchers.
    EXPECT_EQ(m, t) << manual.hosts[h].id;
  }
}

}  // namespace
}  // namespace powerapi::governor
